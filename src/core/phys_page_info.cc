#include "core/phys_page_info.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vic
{

CacheStateVector::CacheStateVector(std::uint32_t num_colours)
    : mapped(num_colours), stale(num_colours)
{
}

CachePageState
CacheStateVector::decode(CachePageId colour) const
{
    const bool m = mapped.test(colour);
    const bool s = stale.test(colour);
    vic_assert(!(m && s), "colour %u both mapped and stale", colour);
    if (s)
        return CachePageState::Stale;
    if (!m)
        return CachePageState::Empty;
    if (cacheDirty && dirtyColour() == colour)
        return CachePageState::Dirty;
    return CachePageState::Present;
}

CachePageId
CacheStateVector::dirtyColour() const
{
    vic_assert(cacheDirty, "dirtyColour() without cacheDirty");
    const std::uint32_t first = mapped.findFirst();
    vic_assert(first < mapped.size(), "cacheDirty with no mapped colour");
    return first;
}

void
CacheStateVector::checkInvariants() const
{
    for (std::uint32_t c = 0; c < mapped.size(); ++c) {
        vic_assert(!(mapped.test(c) && stale.test(c)),
                   "colour %u both mapped and stale", c);
    }
    if (cacheDirty) {
        vic_assert(mapped.count() == 1,
                   "cacheDirty with %u mapped colours (must be 1)",
                   mapped.count());
    }
}

void
CacheStateVector::clear()
{
    mapped.clearAll();
    stale.clearAll();
    cacheDirty = false;
}

PhysPageInfo::PhysPageInfo(std::uint32_t d_colours,
                           std::uint32_t i_colours)
    : dstate(d_colours), istate(i_colours)
{
}

VaMapping *
PhysPageInfo::findMapping(SpaceVa va)
{
    for (auto &m : mappings) {
        if (m.va == va)
            return &m;
    }
    return nullptr;
}

const VaMapping *
PhysPageInfo::findMapping(SpaceVa va) const
{
    for (const auto &m : mappings) {
        if (m.va == va)
            return &m;
    }
    return nullptr;
}

void
PhysPageInfo::addMapping(SpaceVa va, Protection vm_prot)
{
    vic_assert(findMapping(va) == nullptr,
               "duplicate mapping space=%u va=%llx", va.space,
               (unsigned long long)va.va.value);
    mappings.push_back(VaMapping{va, vm_prot});
}

bool
PhysPageInfo::removeMapping(SpaceVa va)
{
    auto it = std::find_if(mappings.begin(), mappings.end(),
                           [&](const VaMapping &m) { return m.va == va; });
    if (it == mappings.end())
        return false;
    mappings.erase(it);
    return true;
}

} // namespace vic
