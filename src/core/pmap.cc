#include "core/pmap.hh"

#include "common/logging.hh"
#include "core/classic_pmap.hh"
#include "core/lazy_pmap.hh"

namespace vic
{

Pmap::Pmap(Machine &m, const PolicyConfig &policy_config)
    : mach(m), cfg(policy_config),
      statDFlushes(m.stats().counter("pmap.d_page_flushes")),
      statDPurges(m.stats().counter("pmap.d_page_purges")),
      statIPurges(m.stats().counter("pmap.i_page_purges"))
{
}

Counter &
Pmap::reasonCounter(const char *kind, const char *reason)
{
    return mach.stats().counter(format("pmap.%s.%s", kind, reason));
}

void
Pmap::flushDataPage(FrameId frame, CachePageId colour,
                    const char *reason)
{
    ++statDFlushes;
    ++reasonCounter("d_flush", reason);
    VIC_EVLOG(mach.events(),
              format("flush  D frame=%llu colour=%u (%s)",
                     (unsigned long long)frame, colour, reason));
    // On a multiprocessor the dirty line may live in any CPU's cache
    // (hardware coherence migrates it): the operation is broadcast, as
    // a cross-processor shootdown would be.
    for (std::uint32_t cpu = 0; cpu < mach.numCpus(); ++cpu)
        mach.dcache(cpu).flushPage(dColourVa(colour),
                                   mach.frameAddr(frame));
}

void
Pmap::purgeDataPage(FrameId frame, CachePageId colour,
                    const char *reason)
{
    ++statDPurges;
    ++reasonCounter("d_purge", reason);
    VIC_EVLOG(mach.events(),
              format("purge  D frame=%llu colour=%u (%s)",
                     (unsigned long long)frame, colour, reason));
    for (std::uint32_t cpu = 0; cpu < mach.numCpus(); ++cpu)
        mach.dcache(cpu).purgePage(dColourVa(colour),
                                   mach.frameAddr(frame));
}

void
Pmap::purgeInstPage(FrameId frame, CachePageId colour,
                    const char *reason)
{
    ++statIPurges;
    ++reasonCounter("i_purge", reason);
    VIC_EVLOG(mach.events(),
              format("purge  I frame=%llu colour=%u (%s)",
                     (unsigned long long)frame, colour, reason));
    for (std::uint32_t cpu = 0; cpu < mach.numCpus(); ++cpu)
        mach.icache(cpu).purgePage(iColourVa(colour),
                                   mach.frameAddr(frame));
}

void
Pmap::setTranslation(SpaceVa va, FrameId frame, Protection prot)
{
    mach.pageTable().enter(va, frame, prot);
    mach.tlbShootdownPage(va);
}

bool
Pmap::dropTranslation(SpaceVa va)
{
    bool modified = mach.pageTable().remove(va);
    mach.tlbShootdownPage(va);
    return modified;
}

void
Pmap::setHardwareProt(SpaceVa va, Protection prot)
{
    mach.pageTable().setProtection(va, prot);
    mach.tlbShootdownPage(va);
}

std::unique_ptr<Pmap>
Pmap::create(Machine &m, const PolicyConfig &policy_config)
{
    switch (policy_config.pmapKind) {
      case PmapKind::Classic:
        return std::make_unique<ClassicPmap>(m, policy_config);
      case PmapKind::Lazy:
        return std::make_unique<LazyPmap>(m, policy_config);
    }
    vic_panic("invalid pmap kind");
}

} // namespace vic
