/**
 * @file
 * The paper's consistency model (Section 3): four states per cache
 * line/page with respect to a virtual address, and the transition rules
 * of Table 2 as pure functions.
 *
 * For any virtual address a cache line is Empty, Present, Dirty or
 * Stale. Six events change state: CPU-read, CPU-write, DMA-read,
 * DMA-write, Purge and Flush. A transition may require a cache control
 * operation (purge or flush) to be applied first; the rules are defined
 * so that stale data is never transferred out of the memory system.
 *
 * These functions are the executable specification. The concrete
 * CacheControl implementation (Figure 1 / LazyPmap) is verified against
 * them by the model-checking tests, and the table2_transitions bench
 * prints them in the paper's layout.
 */

#ifndef VIC_CORE_CACHE_PAGE_STATE_HH
#define VIC_CORE_CACHE_PAGE_STATE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace vic
{

/** Consistency state of a cache line (or, at the implementation's
 *  granularity, a cache page) with respect to a virtual address. */
enum class CachePageState : std::uint8_t
{
    Empty,    ///< line does not contain the data at this address
    Present,  ///< line contains the correct (consistent) data
    Dirty,    ///< written by the CPU; memory may be stale w.r.t. it
    Stale,    ///< a newer version exists in memory or another line
};

/** All states, for iteration in tests and benches. */
inline constexpr std::array<CachePageState, 4> allCachePageStates = {
    CachePageState::Empty, CachePageState::Present,
    CachePageState::Dirty, CachePageState::Stale,
};

/** The memory-system events of the model, for iteration. */
inline constexpr std::array<MemOp, 6> allMemOps = {
    MemOp::CpuRead, MemOp::CpuWrite, MemOp::DmaRead,
    MemOp::DmaWrite, MemOp::Purge, MemOp::Flush,
};

/** Human-readable state name. */
const char *cachePageStateName(CachePageState s);

/** One-letter state abbreviation (E/P/D/S), as in the paper. */
char cachePageStateLetter(CachePageState s);

/** Cache control operation required to force a transition. */
enum class RequiredOp : std::uint8_t
{
    None,
    Purge,
    Flush,
};

/** Human-readable RequiredOp name. */
const char *requiredOpName(RequiredOp op);

/** A transition: the next state and the cache operation (if any) that
 *  must be applied to the line to make the transition safe. */
struct SpecTransition
{
    CachePageState next;
    RequiredOp required = RequiredOp::None;

    bool operator==(const SpecTransition &) const = default;
};

/**
 * Table 2, second column: transition of the TARGET cache line — the
 * line selected by the cache index function for the target virtual
 * address of the operation.
 *
 * For DMA operations the notion of a target line does not apply (DMA
 * bypasses the cache); the paper gives identical transitions in both
 * columns, and this function returns them.
 */
SpecTransition targetTransition(CachePageState current, MemOp op);

/**
 * Table 2, third column: transition of every other cache line that
 * shares the mapping with the target virtual address but does not
 * align with it.
 */
SpecTransition otherTransition(CachePageState current, MemOp op);

} // namespace vic

#endif // VIC_CORE_CACHE_PAGE_STATE_HH
