/**
 * @file
 * Machine-dependent virtual memory layer (Mach's "pmap") with cache
 * consistency management.
 *
 * The machine-independent VM layer (src/os) calls this interface to
 * create and destroy translations, resolve protection faults, and
 * prepare for DMA. Concrete strategies:
 *
 *  - LazyPmap: the paper's contribution — the Figure 1 CacheControl
 *    algorithm over explicit per-(physical page, cache page) state,
 *    delaying flushes and purges until an inconsistency would be
 *    observed;
 *  - ClassicPmap: the "old" eager, case-by-case strategy of Section
 *    2.5 and the related-work systems of Table 5.
 *
 * Both run against the same simulated machine and are interchangeable
 * under the OS layer, which is how the benches compare configurations.
 */

#ifndef VIC_CORE_PMAP_HH
#define VIC_CORE_PMAP_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/policy_config.hh"
#include "machine/machine.hh"
#include "mmu/fault.hh"

namespace vic
{

class Pmap
{
  public:
    /** Semantic hints for enter() (Section 4.1's two optimisations).
     *  They are requests; a policy honours them only if its
     *  configuration enables the corresponding optimisation. */
    struct EnterHints
    {
        /** Every byte of the page will be overwritten through this
         *  mapping before anything is read through it (zero-fill /
         *  copy destination): the purge of a stale target cache page
         *  can be elided. */
        bool willOverwrite = false;
        /** The frame's previous contents are still meaningful. When
         *  false (page being recycled and prepared), a dirty cache
         *  page can be purged instead of flushed. */
        bool needData = true;
    };

    Pmap(Machine &m, const PolicyConfig &policy_config);
    virtual ~Pmap() = default;

    Pmap(const Pmap &) = delete;
    Pmap &operator=(const Pmap &) = delete;

    Machine &machine() { return mach; }
    const PolicyConfig &config() const { return cfg; }

    /**
     * Create a translation from page-aligned @p va to @p frame.
     * @p vm_prot is the VM layer's maximum protection; the effective
     * hardware protection may be more restrictive to catch consistency
     * transitions. @p access is the access initiating the mapping.
     */
    virtual void enter(SpaceVa va, FrameId frame, Protection vm_prot,
                       AccessType access, const EnterHints &hints) = 0;

    /** Remove the translation for @p va (no-op if absent). */
    virtual void remove(SpaceVa va) = 0;

    /** Lower the VM-level protection of an existing mapping (e.g. for
     *  copy-on-write). */
    virtual void protect(SpaceVa va, Protection vm_prot) = 0;

    /**
     * A protection fault occurred on an existing mapping. If the
     * denial was due to cache consistency state, perform the required
     * transitions and return true (the access is retried). If the
     * denial is a genuine VM-level one (e.g. write to a copy-on-write
     * page), return false so the OS can handle it.
     */
    virtual bool resolveConsistencyFault(SpaceVa va,
                                         AccessType access) = 0;

    /** Prepare for a device read of @p frame from memory (DMA-read):
     *  dirty cache data must reach memory first. @p need_data is false
     *  if the frame's contents are dead (never the case for real
     *  output, used by tests). */
    virtual void dmaRead(FrameId frame, bool need_data) = 0;

    /** Prepare for a device write into @p frame (DMA-write): cached
     *  copies must not shadow or overwrite the device's data. */
    virtual void dmaWrite(FrameId frame) = 0;

    /** The frame is being returned to the free list. All mappings must
     *  already be removed. */
    virtual void frameFreed(FrameId frame) = 0;

    /**
     * The data-cache colour at which mapping @p frame would require no
     * consistency work (where its data currently lives in the cache),
     * or nullopt if the frame has no cache footprint. Drives the OS's
     * alignment decisions and the per-colour free list.
     */
    virtual std::optional<CachePageId>
    preferredColour(FrameId frame) const = 0;

    /** All live virtual mappings of @p frame (used by the pageout
     *  daemon to evict every translation before swapping a page). */
    virtual std::vector<SpaceVa> mappingsOf(FrameId frame) const = 0;

    /** Strategy name for reports. */
    virtual const char *kindName() const = 0;

    /** Factory: build the pmap strategy selected by @p policy_config. */
    static std::unique_ptr<Pmap> create(Machine &m,
                                        const PolicyConfig &policy_config);

    // --- shared geometry helpers ---

    /** Data-cache colour of @p va. */
    CachePageId dColourOf(VirtAddr va) const
    { return mach.dcache().geometry().colourOf(va); }

    /** Instruction-cache colour of @p va. */
    CachePageId iColourOf(VirtAddr va) const
    { return mach.icache().geometry().colourOf(va); }

    /** A synthetic kernel-equivalent virtual address of data-cache
     *  colour @p colour, usable to index the cache for flush/purge of
     *  pages that may no longer be mapped. */
    VirtAddr dColourVa(CachePageId colour) const
    { return VirtAddr(std::uint64_t(colour) * mach.pageBytes()); }

    /** Likewise for the instruction cache. */
    VirtAddr iColourVa(CachePageId colour) const
    { return VirtAddr(std::uint64_t(colour) * mach.pageBytes()); }

  protected:
    Machine &mach;
    PolicyConfig cfg;

    // --- cache page operations with statistics attribution ---
    // @p reason tags the operation for the evaluation tables, e.g.
    // "unmap", "newmap", "alias", "dma_read", "dma_write", "ifetch".

    void flushDataPage(FrameId frame, CachePageId colour,
                       const char *reason);
    void purgeDataPage(FrameId frame, CachePageId colour,
                       const char *reason);
    void purgeInstPage(FrameId frame, CachePageId colour,
                       const char *reason);

    // --- page table + TLB updates ---

    /** Install or update the hardware translation. */
    void setTranslation(SpaceVa va, FrameId frame, Protection prot);

    /** Drop the hardware translation. @return old modified bit. */
    bool dropTranslation(SpaceVa va);

    /** Update protection of an existing translation. */
    void setHardwareProt(SpaceVa va, Protection prot);

  private:
    Counter &statDFlushes;
    Counter &statDPurges;
    Counter &statIPurges;

    Counter &reasonCounter(const char *kind, const char *reason);
};

} // namespace vic

#endif // VIC_CORE_PMAP_HH
