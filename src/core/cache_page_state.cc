#include "core/cache_page_state.hh"

#include "common/logging.hh"

namespace vic
{

const char *
cachePageStateName(CachePageState s)
{
    switch (s) {
      case CachePageState::Empty: return "Empty";
      case CachePageState::Present: return "Present";
      case CachePageState::Dirty: return "Dirty";
      case CachePageState::Stale: return "Stale";
    }
    vic_panic("invalid CachePageState %d", static_cast<int>(s));
}

char
cachePageStateLetter(CachePageState s)
{
    switch (s) {
      case CachePageState::Empty: return 'E';
      case CachePageState::Present: return 'P';
      case CachePageState::Dirty: return 'D';
      case CachePageState::Stale: return 'S';
    }
    vic_panic("invalid CachePageState %d", static_cast<int>(s));
}

const char *
requiredOpName(RequiredOp op)
{
    switch (op) {
      case RequiredOp::None: return "";
      case RequiredOp::Purge: return "purge";
      case RequiredOp::Flush: return "flush";
    }
    vic_panic("invalid RequiredOp %d", static_cast<int>(op));
}

SpecTransition
targetTransition(CachePageState current, MemOp op)
{
    using S = CachePageState;
    using R = RequiredOp;
    switch (op) {
      case MemOp::CpuRead:
        // A read must see the line's data become (or stay) consistent.
        // A stale line must first be purged so the read misses and
        // fetches the current value from memory.
        switch (current) {
          case S::Empty: return {S::Present};
          case S::Present: return {S::Present};
          case S::Dirty: return {S::Dirty};
          case S::Stale: return {S::Present, R::Purge};
        }
        break;

      case MemOp::CpuWrite:
        // A write makes the target line the unique holder of the
        // newest data. A stale line must be purged first so the write
        // does not land in (and later expose) old data.
        switch (current) {
          case S::Empty: return {S::Dirty};
          case S::Present: return {S::Dirty};
          case S::Dirty: return {S::Dirty};
          case S::Stale: return {S::Dirty, R::Purge};
        }
        break;

      case MemOp::DmaRead:
        // The device reads memory, so memory must hold the newest
        // data: a dirty line is flushed. On this machine a flush
        // writes back AND invalidates (like every other Dirty+Flush
        // row of this table), so the page ends Empty; claiming
        // Present here costs a provably redundant purge of the
        // absent page on its next differently-mapped use.
        switch (current) {
          case S::Empty: return {S::Empty};
          case S::Present: return {S::Present};
          case S::Dirty: return {S::Empty, R::Flush};
          case S::Stale: return {S::Stale};
        }
        break;

      case MemOp::DmaWrite:
        // The device overwrites memory: every cached copy becomes
        // stale. A dirty line need only be purged (not flushed) since
        // the DMA-write overwrites memory anyway; after the purge the
        // line is empty.
        switch (current) {
          case S::Empty: return {S::Empty};
          case S::Present: return {S::Stale};
          case S::Dirty: return {S::Empty, R::Purge};
          case S::Stale: return {S::Stale};
        }
        break;

      case MemOp::Purge:
      case MemOp::Flush:
        // Both remove the target line from the cache; flush writes a
        // dirty line back first.
        return {S::Empty};
    }
    vic_panic("invalid (state=%d, op=%d)", static_cast<int>(current),
              static_cast<int>(op));
}

SpecTransition
otherTransition(CachePageState current, MemOp op)
{
    using S = CachePageState;
    using R = RequiredOp;
    switch (op) {
      case MemOp::CpuRead:
        // Before the target line can leave the empty state, the newest
        // data must be in memory: a dirty unaligned line is flushed.
        switch (current) {
          case S::Empty: return {S::Empty};
          case S::Present: return {S::Present};
          case S::Dirty: return {S::Empty, R::Flush};
          case S::Stale: return {S::Stale};
        }
        break;

      case MemOp::CpuWrite:
        // The write supersedes every unaligned copy: present lines
        // become stale; a dirty line is flushed (its data is the
        // newest until the write completes) and becomes empty.
        switch (current) {
          case S::Empty: return {S::Empty};
          case S::Present: return {S::Stale};
          case S::Dirty: return {S::Empty, R::Flush};
          case S::Stale: return {S::Stale};
        }
        break;

      case MemOp::DmaRead:
      case MemOp::DmaWrite:
        // DMA does not go through the cache, so every line containing
        // the physical address shares the target transitions.
        return targetTransition(current, op);

      case MemOp::Purge:
      case MemOp::Flush:
        // Cache control operations affect only the target line.
        return {current};
    }
    vic_panic("invalid (state=%d, op=%d)", static_cast<int>(current),
              static_cast<int>(op));
}

} // namespace vic
