/**
 * @file
 * Umbrella header: the whole public API of the vicache library.
 *
 * Downstream users who just want "the paper's system" can include this
 * one header and link against the `vic` CMake target:
 *
 *   #include <vic.hh>
 *
 *   vic::Machine machine{vic::MachineParams::hp720()};
 *   vic::Kernel kernel(machine, vic::PolicyConfig::configF());
 *
 * Individual module headers remain includable on their own for finer
 * dependency control.
 */

#ifndef VIC_VIC_HH
#define VIC_VIC_HH

// Support library
#include "common/arena.hh"
#include "common/bitvector.hh"
#include "common/column_store.hh"
#include "common/cycle_clock.hh"
#include "common/event_log.hh"
#include "common/logging.hh"
#include "common/observer.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

// Machine substrate
#include "cache/cache.hh"
#include "cache/cache_geometry.hh"
#include "dma/disk.hh"
#include "dma/dma_engine.hh"
#include "machine/cpu.hh"
#include "machine/machine.hh"
#include "machine/machine_params.hh"
#include "mem/free_page_list.hh"
#include "mem/physical_memory.hh"
#include "mmu/fault.hh"
#include "mmu/page_table.hh"
#include "tlb/tlb.hh"

// The paper's contribution
#include "core/cache_page_state.hh"
#include "core/classic_pmap.hh"
#include "core/lazy_pmap.hh"
#include "core/phys_page_info.hh"
#include "core/pmap.hh"
#include "core/policy_config.hh"
#include "core/spec_executor.hh"

// Validation
#include "oracle/consistency_oracle.hh"

// Operating system layer
#include "os/address_space.hh"
#include "os/buffer_cache.hh"
#include "os/file_system.hh"
#include "os/kernel.hh"
#include "os/os_params.hh"
#include "os/page_preparer.hh"
#include "os/pageout.hh"
#include "os/vm_object.hh"

// Workloads and the evaluation runner
#include "workload/afs_bench.hh"
#include "workload/contrived_alias.hh"
#include "workload/kernel_build.hh"
#include "workload/db_server.hh"
#include "workload/latex_bench.hh"
#include "workload/multiprog.hh"
#include "workload/runner.hh"
#include "workload/shard_runner.hh"
#include "workload/workload.hh"

#endif // VIC_VIC_HH
