#include "mc/explorer.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>

#include "common/logging.hh"
#include "common/random.hh"
#include "mc/executor.hh"

namespace vic::mc
{

namespace
{

struct Ctx
{
    const Scenario &scn;
    const ExploreOptions &opt;
    ScenarioResult res;
    std::set<std::string> raceKeys;
    std::set<std::uint64_t> canon;
    std::set<std::uint64_t> endStates;
    std::set<std::uint64_t> visited; ///< hashPrune only
    bool stop = false;
};

std::unique_ptr<Executor>
runPrefix(Ctx &c, const Schedule &prefix)
{
    auto ex = std::make_unique<Executor>(c.scn);
    for (int t : prefix) {
        ex->step(t);
        ++c.res.steps;
    }
    return ex;
}

/** Must step @p i precede step @p j (i earlier in the schedule)? */
bool
orderedSteps(const StepRecord &a, const StepRecord &b)
{
    if (a.thread == b.thread)
        return true;
    if (a.startedBeat == b.thread)
        return true; // fork: a transfer's start precedes its beats
    if (b.kind == OpKind::DmaWait &&
        std::find(b.joins.begin(), b.joins.end(), a.thread) !=
            b.joins.end())
        return true; // join: beats precede the wait
    return dependent(a.fp, b.fp);
}

/** Hash of the run's Mazurkiewicz trace: linearise the dependence
 *  graph picking the least-labelled ready step first, so equivalent
 *  schedules (differing only in commuting adjacent steps) hash
 *  identically and inequivalent ones do not. */
std::uint64_t
canonicalTraceHash(const std::vector<StepRecord> &hist)
{
    const std::size_t n = hist.size();
    std::vector<std::vector<std::size_t>> preds(n);
    std::vector<std::size_t> npred(n, 0);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < j; ++i) {
            if (orderedSteps(hist[i], hist[j])) {
                preds[j].push_back(i);
                ++npred[j];
            }
        }
    }

    std::uint64_t h = 1469598103934665603ull;
    auto mixByte = [&h](unsigned char b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    auto mixLabel = [&](const std::string &s) {
        for (char ch : s)
            mixByte(static_cast<unsigned char>(ch));
        mixByte(0);
    };

    std::vector<bool> emitted(n, false);
    std::vector<std::size_t> remaining = npred;
    std::vector<std::vector<std::size_t>> succs(n);
    for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i : preds[j])
            succs[i].push_back(j);

    for (std::size_t emitted_count = 0; emitted_count < n;
         ++emitted_count) {
        std::size_t best = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (emitted[i] || remaining[i] != 0)
                continue;
            if (best == n || hist[i].label < hist[best].label)
                best = i;
        }
        vic_assert(best < n, "cyclic step dependence");
        emitted[best] = true;
        mixLabel(hist[best].label);
        for (std::size_t j : succs[best])
            --remaining[j];
    }
    return h;
}

void
completeRun(Ctx &c, Executor &ex, const Schedule &prefix)
{
    if (c.res.executions >= c.opt.budget) {
        c.res.exhausted = false;
        c.stop = true;
        return;
    }
    ++c.res.executions;
    c.res.maxDepth = std::max<std::uint64_t>(c.res.maxDepth,
                                             prefix.size());
    if (!ex.allFinished())
        c.res.deadlock = true;

    c.canon.insert(canonicalTraceHash(ex.history()));
    c.res.canonicalTraces = c.canon.size();
    c.endStates.insert(ex.stateHash());
    c.res.distinctEndStates = c.endStates.size();

    for (RaceReport &r :
         detectRaces(ex.history(), ex.numThreads(),
                     CoherenceModel::of(c.scn.mparams))) {
        if (!c.raceKeys.insert(r.key()).second)
            continue;
        if (r.benign)
            ++c.res.benignRaces;
        if (r.weakWindow && !r.benign)
            ++c.res.weakWindowRaces;
        c.res.races.push_back(std::move(r));
    }

    const std::uint64_t v = ex.violationCount();
    if (v > 0) {
        ++c.res.violatingRuns;
        c.res.totalViolations += v;
        const int first = ex.firstViolationStep();
        vic_assert(first >= 0, "violations without a violating step");
        const std::size_t len = static_cast<std::size_t>(first) + 1;
        if (c.res.minimalCounterexample.empty() ||
            len < c.res.minimalCounterexample.size()) {
            c.res.minimalCounterexample.assign(
                prefix.begin(),
                prefix.begin() + static_cast<std::ptrdiff_t>(len));
            c.res.minimalCounterexampleLabels.clear();
            for (std::size_t i = 0; i < len; ++i)
                c.res.minimalCounterexampleLabels.push_back(
                    ex.history()[i].label);
        }
    }
}

void
node(Ctx &c, std::unique_ptr<Executor> ex, const Schedule &prefix,
     std::set<int> sleep)
{
    if (c.stop)
        return;
    std::vector<int> enabledNow = ex->enabled();
    if (enabledNow.empty()) {
        completeRun(c, *ex, prefix);
        return;
    }
    if (prefix.size() >= c.opt.maxSteps) {
        c.res.exhausted = false;
        return;
    }

    if (c.opt.persistentSets && enabledNow.size() > 1) {
        for (int t : enabledNow) {
            if (sleep.count(t))
                continue;
            const Footprint next = ex->peek(t);
            bool alone = true;
            for (int u = 0; u < ex->numThreads() && alone; ++u) {
                if (u == t)
                    continue;
                if (dependent(next, ex->remainingFootprint(u)))
                    alone = false;
            }
            if (alone) {
                c.res.persistentPruned += enabledNow.size() - 1;
                enabledNow = {t};
                break;
            }
        }
    }

    for (int t : enabledNow) {
        if (c.stop)
            return;
        if (c.opt.sleepSets && sleep.count(t)) {
            ++c.res.sleepPruned;
            continue;
        }

        std::unique_ptr<Executor> child = runPrefix(c, prefix);
        child->step(t);
        ++c.res.steps;
        const Footprint taken = child->history().back().fp;

        if (c.opt.hashPrune &&
            !c.visited.insert(child->stateHash()).second) {
            sleep.insert(t);
            continue;
        }

        std::set<int> childSleep;
        for (int s : sleep) {
            if (!dependent(taken, ex->peek(s)))
                childSleep.insert(s);
        }

        Schedule childPrefix = prefix;
        childPrefix.push_back(t);
        node(c, std::move(child), childPrefix, std::move(childSleep));
        sleep.insert(t);
    }
}

} // namespace

bool
ScenarioResult::passed(const Expectation &expect) const
{
    if (!exhausted || deadlock)
        return false;
    if (expect.raceFree && reportedRaces() != 0)
        return false;
    if (expect.violationFree && violatingRuns != 0)
        return false;
    if (expect.wantConfirmedRace) {
        if (confirmedRaces == 0 || !replayConfirmed)
            return false;
        if (expect.maxCounterexample != 0 &&
            minimalCounterexample.size() > expect.maxCounterexample)
            return false;
    }
    if (expect.wantWeakWindow && weakWindowRaces == 0)
        return false;
    if (expect.wantBenignRace && benignRaces == 0)
        return false;
    return true;
}

ScenarioResult
explore(const Scenario &scenario, const ExploreOptions &options)
{
    Ctx c{scenario, options, {}, {}, {}, {}, {}, false};
    c.res.scenario = scenario.name;
    c.res.policy = scenario.policy.name;
    c.res.memoryOrder = scenario.memoryOrder;

    node(c, runPrefix(c, {}), {}, {});
    c.res.canonicalHashes.assign(c.canon.begin(), c.canon.end());

    if (!c.res.minimalCounterexample.empty()) {
        Executor replay(scenario);
        for (int t : c.res.minimalCounterexample)
            replay.step(t);
        c.res.replayConfirmed =
            replay.violationCount() > 0 &&
            replay.firstViolationStep() ==
                static_cast<int>(c.res.minimalCounterexample.size()) -
                    1;
    }
    if (c.res.violatingRuns > 0)
        c.res.confirmedRaces = c.res.reportedRaces();
    return c.res;
}

std::vector<ScenarioResult>
exploreMany(const std::vector<Scenario> &scenarios,
            const ExploreOptions &options, unsigned jobs)
{
    std::vector<ScenarioResult> out(scenarios.size());
    if (jobs <= 1 || scenarios.size() <= 1) {
        for (std::size_t i = 0; i < scenarios.size(); ++i)
            out[i] = explore(scenarios[i], options);
        return out;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= scenarios.size())
                return;
            out[i] = explore(scenarios[i], options);
        }
    };
    std::vector<std::thread> pool;
    const unsigned n = std::min<unsigned>(
        jobs, static_cast<unsigned>(scenarios.size()));
    for (unsigned i = 0; i < n; ++i)
        pool.emplace_back(worker);
    for (std::thread &th : pool)
        th.join();
    return out;
}

namespace
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Per-scenario stream seed: the same double-SplitMix64 mix the
 *  experiment engine uses for replica seeds, keyed by catalog index
 *  so the stream is independent of scheduling across --jobs. */
std::uint64_t
fuzzStreamSeed(std::uint64_t base, std::size_t scenario_index)
{
    return splitmix64(splitmix64(base) ^
                      splitmix64(0x5eedull + scenario_index));
}

} // namespace

FuzzResult
fuzzSchedules(const Scenario &scenario, const FuzzOptions &options,
              std::size_t scenarioIndex,
              const std::vector<std::uint64_t> &knownTraces)
{
    FuzzResult res;
    res.scenario = scenario.name;
    res.policy = scenario.policy.name;
    res.memoryOrder = scenario.memoryOrder;

    Random rng(fuzzStreamSeed(options.seed, scenarioIndex));
    std::set<std::uint64_t> canon;
    std::set<std::uint64_t> endStates;
    std::set<std::string> raceKeys;

    for (std::uint64_t sample = 0; sample < options.samples;
         ++sample) {
        Executor ex(scenario);
        Schedule schedule;
        for (;;) {
            const std::vector<int> en = ex.enabled();
            if (en.empty() || schedule.size() >= options.maxSteps)
                break;
            const int t = en[static_cast<std::size_t>(
                rng.below(en.size()))];
            ex.step(t);
            schedule.push_back(t);
        }
        ++res.samples;
        res.steps += schedule.size();
        res.maxDepth = std::max<std::uint64_t>(res.maxDepth,
                                               schedule.size());
        if (!ex.allFinished())
            ++res.deadlockRuns;

        const std::uint64_t trace = canonicalTraceHash(ex.history());
        if (canon.insert(trace).second &&
            !std::binary_search(knownTraces.begin(),
                                knownTraces.end(), trace))
            ++res.newTraces;
        endStates.insert(ex.stateHash());

        for (RaceReport &r :
             detectRaces(ex.history(), ex.numThreads(),
                         CoherenceModel::of(scenario.mparams))) {
            if (!raceKeys.insert(r.key()).second)
                continue;
            if (r.benign)
                ++res.benignRaces;
            if (r.weakWindow && !r.benign)
                ++res.weakWindowRaces;
            res.races.push_back(std::move(r));
        }

        const std::uint64_t v = ex.violationCount();
        if (v > 0) {
            ++res.violatingRuns;
            res.totalViolations += v;
            const int first = ex.firstViolationStep();
            vic_assert(first >= 0,
                       "violations without a violating step");
            const std::size_t len =
                static_cast<std::size_t>(first) + 1;
            if (res.minimalCounterexample.empty() ||
                len < res.minimalCounterexample.size()) {
                res.minimalCounterexample.assign(
                    schedule.begin(),
                    schedule.begin() +
                        static_cast<std::ptrdiff_t>(len));
                res.minimalCounterexampleLabels.clear();
                for (std::size_t i = 0; i < len; ++i)
                    res.minimalCounterexampleLabels.push_back(
                        ex.history()[i].label);
            }
        }
    }
    res.canonicalTraces = canon.size();
    res.distinctEndStates = endStates.size();

    if (!res.minimalCounterexample.empty()) {
        Executor replay(scenario);
        for (int t : res.minimalCounterexample)
            replay.step(t);
        res.replayConfirmed =
            replay.violationCount() > 0 &&
            replay.firstViolationStep() ==
                static_cast<int>(res.minimalCounterexample.size()) - 1;
    }
    return res;
}

std::vector<FuzzResult>
fuzzMany(const std::vector<Scenario> &scenarios,
         const FuzzOptions &options,
         const std::vector<std::vector<std::uint64_t>> &knownTraces,
         unsigned jobs)
{
    static const std::vector<std::uint64_t> kNoBaseline;
    auto baseline = [&](std::size_t i) -> const std::vector<std::uint64_t> & {
        return i < knownTraces.size() ? knownTraces[i] : kNoBaseline;
    };

    std::vector<FuzzResult> out(scenarios.size());
    if (jobs <= 1 || scenarios.size() <= 1) {
        for (std::size_t i = 0; i < scenarios.size(); ++i)
            out[i] = fuzzSchedules(scenarios[i], options, i,
                                   baseline(i));
        return out;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= scenarios.size())
                return;
            out[i] = fuzzSchedules(scenarios[i], options, i,
                                   baseline(i));
        }
    };
    std::vector<std::thread> pool;
    const unsigned n = std::min<unsigned>(
        jobs, static_cast<unsigned>(scenarios.size()));
    for (unsigned i = 0; i < n; ++i)
        pool.emplace_back(worker);
    for (std::thread &th : pool)
        th.join();
    return out;
}

} // namespace vic::mc
