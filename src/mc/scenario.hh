/**
 * @file
 * Scenario catalog for the interleaving model checker.
 *
 * Each scenario is a tiny concurrent program over the consistency
 * alphabet: one or two CPUs issuing accesses, an operating-system
 * thread performing the pmap/DMA/busy-bit choreography of a kernel
 * I/O or pageout path, and the line-granular beats of any transfer
 * it starts. The guarded scenarios mirror the orderings the kernel
 * actually ships (src/os/pageout.cc, kernel.cc, buffer_cache.cc) and
 * must be race- and violation-free under every sound policy; the
 * broken-ordering exemplars invert one edge of that choreography and
 * must lose a write-back that the explorer catches with a short
 * replayable schedule.
 */

#ifndef VIC_MC_SCENARIO_HH
#define VIC_MC_SCENARIO_HH

#include <string>
#include <vector>

#include "core/policy_config.hh"
#include "machine/machine_params.hh"
#include "mc/event.hh"

namespace vic::mc
{

/** A virtual page the scenario's CPU accesses go through. Slots of
 *  equal colour on the same frame are aligned aliases. */
struct Slot
{
    std::uint8_t colour = 0;
    std::uint8_t replica = 0; ///< distinguishes same-colour aliases
};

/** What the explorer must find for the scenario to pass. */
struct Expectation
{
    /** No non-benign race may be reported. */
    bool raceFree = true;
    /** No schedule may produce a consistency-oracle violation. */
    bool violationFree = true;
    /** At least one race must be confirmed by an oracle violation. */
    bool wantConfirmedRace = false;
    /** At least one reported race must be a weak-order window (a DMA
     *  access overlapping a still-buffered store). */
    bool wantWeakWindow = false;
    /** At least one unordered pair must be classified benign — the
     *  hardware-coherence claim is checked positively, not conflated
     *  into raceFree (a scenario with NO unordered pairs at all is
     *  race-free too, but proves nothing about the classifier). */
    bool wantBenignRace = false;
    /** Upper bound on the minimal counterexample length (0 = none). */
    std::size_t maxCounterexample = 0;
};

struct Scenario
{
    std::string name;
    PolicyConfig policy;
    MachineParams mparams;
    std::vector<Slot> slots;
    std::vector<Thread> threads;
    Expectation expect;
    MemoryOrder memoryOrder = MemoryOrder::SC;
};

/** Scaled-down machine for exploration: 32 frames, 16 KB caches
 *  (4 colours), line-granular non-snooping DMA by default. */
MachineParams mcMachineParams(std::uint32_t num_cpus = 1,
                              bool dma_snoops = false);

// --- catalog -----------------------------------------------------------

/** Pageout/IO paths with the shipping ordering (flush/purge and busy
 *  guard before the transfer): expected race- and violation-free. */
std::vector<Scenario> guardedScenarios(const PolicyConfig &policy);

/** Adversarial kernel-path variant that starts the device transfer
 *  BEFORE the DMA-read flush and takes no busy guard: must lose a
 *  write-back, caught with a schedule of at most 6 events. */
Scenario flushAfterStartExemplar(const PolicyConfig &policy);

/** Correct flush ordering but no busy guard: a store interleaved
 *  between the flush and the transfer's beat is lost. */
Scenario lostWriteBackRace(const PolicyConfig &policy);

/** Same alphabet as lostWriteBackRace on a snooping machine: the
 *  CPU/DMA pairs become benign and no violation is possible. */
Scenario snoopingVariant(const PolicyConfig &policy);

/** Two device writes into the same frame with no ordering: an
 *  unordered (DMA, DMA) conflict (tests only). */
Scenario dmaDmaOverlap(const PolicyConfig &policy);

/** Two CPU stores on different processors, frames and colours: a
 *  2-event independent pair (exactly one inequivalent interleaving). */
Scenario independentPair(const PolicyConfig &policy);

/** Two CPU stores to the same line from different processors: a
 *  2-event conflict (exactly two inequivalent interleavings). */
Scenario dependentPair(const PolicyConfig &policy);

/** The scenarios verify_policy --interleave gates on: the guarded set
 *  plus the broken-ordering exemplar and the snooping variant. */
std::vector<Scenario> standardCatalog(const PolicyConfig &policy);

// --- multiprocessor coherence ------------------------------------------

/** Producer/consumer across two CPUs' caches: cpu0 stores a line,
 *  cpu1 loads it. On the default MESI machine the pair is unordered
 *  but benign — the consumer's bus read snoops the producer's
 *  Modified copy — so the scenario must be race- and violation-free
 *  AND report the benign pair. */
Scenario crossCacheSharing(const PolicyConfig &policy);

/** The same program with the coherence bus deconfigured
 *  (cpuCoherence = None): the consumer fills stale memory under the
 *  producer's dirty copy. The pair is a genuine race and the explorer
 *  must confirm it with a 2-event oracle counterexample. This is the
 *  regression for the detector's old hard-coded assumption that
 *  CPU/CPU pairs are always hardware-coherent. */
Scenario nonCoherentSharing(const PolicyConfig &policy);

/** Two same-line stores from different CPUs on the MESI machine:
 *  write-invalidate serialises them (single-writer), so the pair is
 *  benign and both orders converge on the last store's value. */
Scenario crossCacheStores(const PolicyConfig &policy);

/** The catalog verify_policy --coherence gates on: the cross-cache
 *  pairs under MESI and the non-coherent regression. */
std::vector<Scenario> coherenceCatalog(const PolicyConfig &policy);

// --- weak store order --------------------------------------------------

/** The guarded choreography re-explored under WeakStoreOrder. The
 *  busy-acquire point forces every CPU's buffered stores to the frame
 *  to drain, so the shipping orderings must stay race- and
 *  violation-free even with asynchronous store visibility. */
std::vector<Scenario> weakGuardedScenarios(const PolicyConfig &policy);

/** Seeded-broken exemplar: a single thread stores into the page,
 *  takes no busy guard and issues no fence, then flushes and starts a
 *  DMA read. Under SC the program order store→flush→transfer is safe;
 *  under WeakStoreOrder the undrained store can overlap the transfer
 *  — a weak-order window only relaxed exploration can catch. */
Scenario missingFenceExemplar(const PolicyConfig &policy,
                              MemoryOrder order =
                                  MemoryOrder::WeakStoreOrder);

/** The missing-fence program with the bug fixed: an explicit fence
 *  between the store and the flush drains the buffer, restoring the
 *  SC verdict under WeakStoreOrder. */
Scenario fencedVariant(const PolicyConfig &policy);

/** The weak-order catalog verify_policy --memory-order weak gates on:
 *  the weak guarded set, the missing-fence exemplar, and its fenced
 *  repair. */
std::vector<Scenario> weakCatalog(const PolicyConfig &policy);

} // namespace vic::mc

#endif // VIC_MC_SCENARIO_HH
