#include "mc/scenario.hh"

namespace vic::mc
{

namespace
{

/** Slot table shared by the catalog: A (colour 0), B (colour 1),
 *  C (colour 0 alias of A), Y (colour 0, used with the bystander
 *  frame). */
std::vector<Slot>
standardSlots()
{
    return {{0, 0}, {1, 0}, {0, 1}, {0, 0}};
}

constexpr std::uint8_t kSlotA = 0;
constexpr std::uint8_t kSlotY = 3;

Op
cpuOp(OpKind kind, std::uint8_t slot, std::uint8_t frame_sel = 0)
{
    Op op;
    op.kind = kind;
    op.slot = slot;
    op.frameSel = frame_sel;
    return op;
}

Op
dmaOp(OpKind kind, std::uint32_t lines = 1)
{
    Op op;
    op.kind = kind;
    op.lines = lines;
    return op;
}

Thread
userThread(std::uint32_t cpu, std::uint8_t slot,
           std::uint8_t frame_sel = 0)
{
    Thread t;
    t.name = "user" + std::to_string(cpu);
    t.cpu = cpu;
    t.ops = {cpuOp(OpKind::CpuStore, slot, frame_sel),
             cpuOp(OpKind::CpuLoad, slot, frame_sel)};
    return t;
}

Scenario
base(const char *name, const PolicyConfig &policy,
     std::uint32_t num_cpus = 1, bool dma_snoops = false)
{
    Scenario s;
    s.name = name;
    s.policy = policy;
    s.mparams = mcMachineParams(num_cpus, dma_snoops);
    s.slots = standardSlots();
    return s;
}

} // namespace

MachineParams
mcMachineParams(std::uint32_t num_cpus, bool dma_snoops)
{
    MachineParams p = MachineParams::hp720();
    p.numFrames = 32;
    p.dcacheBytes = 16 * 1024; // 4 colours at 4 KB pages
    p.icacheBytes = 16 * 1024;
    p.numCpus = num_cpus;
    p.dmaSnoops = dma_snoops;
    return p;
}

std::vector<Scenario>
guardedScenarios(const PolicyConfig &policy)
{
    std::vector<Scenario> out;

    // Swap-out / buffer write-back choreography (pageout.cc,
    // buffer_cache.cc flushSlot): busy, flush, transfer, wait, release.
    {
        Scenario s = base("dma-out-guarded", policy);
        Thread pager;
        pager.name = "pager";
        pager.ops = {dmaOp(OpKind::BusyAcquire),
                     dmaOp(OpKind::PmapDmaRead),
                     dmaOp(OpKind::DmaStartRead, 2),
                     dmaOp(OpKind::DmaWait),
                     dmaOp(OpKind::BusyRelease)};
        s.threads = {userThread(0, kSlotA), pager};
        out.push_back(std::move(s));
    }

    // Swap-in / buffer fill choreography (kernel.cc faultInPage,
    // buffer_cache.cc fillSlot): busy, purge, transfer, wait, release.
    {
        Scenario s = base("dma-in-guarded", policy);
        Thread pager;
        pager.name = "pager";
        pager.ops = {dmaOp(OpKind::BusyAcquire),
                     dmaOp(OpKind::PmapDmaWrite),
                     dmaOp(OpKind::DmaStartWrite, 2),
                     dmaOp(OpKind::DmaWait),
                     dmaOp(OpKind::BusyRelease)};
        s.threads = {userThread(0, kSlotA), pager};
        out.push_back(std::move(s));
    }

    // Full pageout on a two-CPU machine: the victim's translation is
    // evicted before the flush, and a second processor keeps touching
    // an unrelated frame of the same colour throughout the transfer.
    {
        Scenario s = base("pageout-guarded", policy, /*num_cpus=*/2);
        Thread pager;
        pager.name = "pager";
        pager.ops = {dmaOp(OpKind::BusyAcquire),
                     cpuOp(OpKind::PmapUnmap, kSlotA),
                     dmaOp(OpKind::PmapDmaRead),
                     dmaOp(OpKind::DmaStartRead, 2),
                     dmaOp(OpKind::DmaWait),
                     dmaOp(OpKind::BusyRelease)};
        s.threads = {userThread(0, kSlotA),
                     userThread(1, kSlotY, /*frame_sel=*/1), pager};
        out.push_back(std::move(s));
    }

    return out;
}

Scenario
flushAfterStartExemplar(const PolicyConfig &policy)
{
    Scenario s = base("flush-after-start", policy);
    Thread pager;
    pager.name = "pager-broken";
    pager.ops = {dmaOp(OpKind::DmaStartRead, 2),
                 dmaOp(OpKind::PmapDmaRead),
                 dmaOp(OpKind::DmaWait)};
    Thread user;
    user.name = "user0";
    user.cpu = 0;
    user.ops = {cpuOp(OpKind::CpuStore, kSlotA)};
    s.threads = {user, pager};
    s.expect.raceFree = false;
    s.expect.violationFree = false;
    s.expect.wantConfirmedRace = true;
    s.expect.maxCounterexample = 6;
    return s;
}

Scenario
lostWriteBackRace(const PolicyConfig &policy)
{
    Scenario s = base("lost-write-back", policy);
    Thread pager;
    pager.name = "pager-unguarded";
    pager.ops = {dmaOp(OpKind::PmapDmaRead),
                 dmaOp(OpKind::DmaStartRead, 1),
                 dmaOp(OpKind::DmaWait)};
    Thread user;
    user.name = "user0";
    user.cpu = 0;
    user.ops = {cpuOp(OpKind::CpuStore, kSlotA)};
    s.threads = {user, pager};
    s.expect.raceFree = false;
    s.expect.violationFree = false;
    s.expect.wantConfirmedRace = true;
    s.expect.maxCounterexample = 4;
    return s;
}

Scenario
snoopingVariant(const PolicyConfig &policy)
{
    Scenario s = lostWriteBackRace(policy);
    s.name = "snooping-unguarded";
    s.mparams = mcMachineParams(1, /*dma_snoops=*/true);
    s.expect.raceFree = true; // CPU/DMA pairs are benign when snooped
    s.expect.violationFree = true;
    s.expect.wantConfirmedRace = false;
    // raceFree alone would also pass if the pairs simply vanished;
    // require the benign classification to actually fire.
    s.expect.wantBenignRace = true;
    s.expect.maxCounterexample = 0;
    return s;
}

Scenario
dmaDmaOverlap(const PolicyConfig &policy)
{
    Scenario s = base("dma-dma-overlap", policy);
    for (int i = 0; i < 2; ++i) {
        Thread t;
        t.name = "dev" + std::to_string(i);
        t.ops = {dmaOp(OpKind::DmaStartWrite, 1),
                 dmaOp(OpKind::DmaWait)};
        s.threads.push_back(std::move(t));
    }
    s.expect.raceFree = false;
    return s;
}

Scenario
independentPair(const PolicyConfig &policy)
{
    Scenario s = base("independent-pair", policy, /*num_cpus=*/2);
    Thread a;
    a.name = "user0";
    a.cpu = 0;
    a.ops = {cpuOp(OpKind::CpuStore, kSlotA)};
    Thread b;
    b.name = "user1";
    b.cpu = 1;
    b.ops = {cpuOp(OpKind::CpuStore, /*slot=*/1, /*frame_sel=*/1)};
    s.threads = {a, b};
    return s;
}

Scenario
dependentPair(const PolicyConfig &policy)
{
    Scenario s = base("dependent-pair", policy, /*num_cpus=*/2);
    Thread a;
    a.name = "user0";
    a.cpu = 0;
    a.ops = {cpuOp(OpKind::CpuStore, kSlotA)};
    Thread b;
    b.name = "user1";
    b.cpu = 1;
    b.ops = {cpuOp(OpKind::CpuStore, kSlotA)};
    s.threads = {a, b};
    return s;
}

std::vector<Scenario>
standardCatalog(const PolicyConfig &policy)
{
    std::vector<Scenario> out = guardedScenarios(policy);
    out.push_back(flushAfterStartExemplar(policy));
    out.push_back(lostWriteBackRace(policy));
    out.push_back(snoopingVariant(policy));
    return out;
}

Scenario
crossCacheSharing(const PolicyConfig &policy)
{
    Scenario s = base("cross-cache-sharing", policy, /*num_cpus=*/2);
    Thread producer;
    producer.name = "writer0";
    producer.cpu = 0;
    producer.ops = {cpuOp(OpKind::CpuStore, kSlotA)};
    Thread consumer;
    consumer.name = "reader1";
    consumer.cpu = 1;
    consumer.ops = {cpuOp(OpKind::CpuLoad, kSlotA)};
    s.threads = {producer, consumer};
    s.expect.wantBenignRace = true;
    return s;
}

Scenario
nonCoherentSharing(const PolicyConfig &policy)
{
    Scenario s = crossCacheSharing(policy);
    s.name = "cross-cache-noncoherent";
    s.mparams.cpuCoherence = MachineParams::CpuCoherence::None;
    s.expect.raceFree = false;
    s.expect.violationFree = false;
    s.expect.wantConfirmedRace = true;
    s.expect.wantBenignRace = false;
    s.expect.maxCounterexample = 2;
    return s;
}

Scenario
crossCacheStores(const PolicyConfig &policy)
{
    Scenario s = dependentPair(policy);
    s.name = "cross-cache-stores";
    s.expect.wantBenignRace = true;
    return s;
}

std::vector<Scenario>
coherenceCatalog(const PolicyConfig &policy)
{
    return {crossCacheSharing(policy), crossCacheStores(policy),
            nonCoherentSharing(policy)};
}

std::vector<Scenario>
weakGuardedScenarios(const PolicyConfig &policy)
{
    std::vector<Scenario> out = guardedScenarios(policy);
    for (Scenario &s : out) {
        s.name += "-weak";
        s.memoryOrder = MemoryOrder::WeakStoreOrder;
    }
    return out;
}

Scenario
missingFenceExemplar(const PolicyConfig &policy, MemoryOrder order)
{
    Scenario s = base("dma-out-missing-fence", policy);
    s.memoryOrder = order;
    Thread writer;
    writer.name = "writer";
    writer.cpu = 0;
    writer.ops = {cpuOp(OpKind::CpuStore, kSlotA),
                  dmaOp(OpKind::PmapDmaRead),
                  dmaOp(OpKind::DmaStartRead, 1),
                  dmaOp(OpKind::DmaWait)};
    s.threads = {writer};
    if (order == MemoryOrder::WeakStoreOrder) {
        // The drain can slip past the flush and race the transfer.
        s.expect.raceFree = false;
        s.expect.violationFree = false;
        s.expect.wantConfirmedRace = true;
        s.expect.wantWeakWindow = true;
        s.expect.maxCounterexample = 5;
    }
    return s;
}

Scenario
fencedVariant(const PolicyConfig &policy)
{
    Scenario s = missingFenceExemplar(policy);
    s.name = "dma-out-fenced";
    s.threads[0].ops.insert(s.threads[0].ops.begin() + 1,
                            dmaOp(OpKind::Fence));
    s.expect = Expectation{};
    return s;
}

std::vector<Scenario>
weakCatalog(const PolicyConfig &policy)
{
    std::vector<Scenario> out = weakGuardedScenarios(policy);
    out.push_back(missingFenceExemplar(policy));
    out.push_back(fencedVariant(policy));
    return out;
}

} // namespace vic::mc
