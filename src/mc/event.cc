#include "mc/event.hh"

#include <algorithm>

namespace vic::mc
{

const char *
memoryOrderName(MemoryOrder order)
{
    switch (order) {
      case MemoryOrder::SC: return "sc";
      case MemoryOrder::WeakStoreOrder: return "weak";
    }
    return "?";
}

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::CpuLoad: return "load";
      case OpKind::CpuStore: return "store";
      case OpKind::CpuIFetch: return "ifetch";
      case OpKind::PmapDmaRead: return "pmap-dma-read";
      case OpKind::PmapDmaWrite: return "pmap-dma-write";
      case OpKind::PmapUnmap: return "pmap-unmap";
      case OpKind::BusyAcquire: return "busy-acquire";
      case OpKind::BusyRelease: return "busy-release";
      case OpKind::DmaStartRead: return "dma-start-read";
      case OpKind::DmaStartWrite: return "dma-start-write";
      case OpKind::DmaWait: return "dma-wait";
      case OpKind::DmaBeat: return "dma-beat";
      case OpKind::Fence: return "fence";
      case OpKind::StoreDrain: return "sb-drain";
    }
    return "?";
}

void
Footprint::addLine(std::vector<std::uint64_t> &set, std::uint64_t line)
{
    auto it = std::lower_bound(set.begin(), set.end(), line);
    if (it == set.end() || *it != line)
        set.insert(it, line);
}

void
Footprint::addFrame(std::vector<std::uint64_t> &set, std::uint64_t frame)
{
    addLine(set, frame);
}

bool
setsIntersect(const std::vector<std::uint64_t> &a,
              const std::vector<std::uint64_t> &b)
{
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j])
            return true;
        if (a[i] < b[j])
            ++i;
        else
            ++j;
    }
    return false;
}

std::uint64_t
conflictingLine(const Footprint &a, const Footprint &b)
{
    auto firstShared = [](const std::vector<std::uint64_t> &x,
                          const std::vector<std::uint64_t> &y)
        -> std::uint64_t {
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < x.size() && j < y.size()) {
            if (x[i] == y[j])
                return x[i];
            if (x[i] < y[j])
                ++i;
            else
                ++j;
        }
        return ~std::uint64_t(0);
    };
    std::uint64_t line = firstShared(a.writeLines, b.writeLines);
    if (line == ~std::uint64_t(0))
        line = firstShared(a.writeLines, b.readLines);
    if (line == ~std::uint64_t(0))
        line = firstShared(a.readLines, b.writeLines);
    return line;
}

bool
dependent(const Footprint &a, const Footprint &b)
{
    if (a.pmapOp && b.pmapOp)
        return true;
    if (a.sbOp && b.sbOp && a.sbCpu == b.sbCpu)
        return true;
    if ((a.busyOp() || b.busyOp()) &&
        setsIntersect(a.frames, b.frames))
        return true;
    if (conflictingLine(a, b) != ~std::uint64_t(0))
        return true;
    if ((a.dmaAccess && b.cpuData) || (b.dmaAccess && a.cpuData))
        return true;
    if (a.cpuData && b.cpuData && a.cpu == b.cpu && a.inst == b.inst &&
        a.colour == b.colour)
        return true;
    return false;
}

} // namespace vic::mc
