/**
 * @file
 * Schedule-controlled executor: drives one concrete Machine + Pmap
 * one atomic operation at a time.
 *
 * The executor instantiates a fresh scaled-down machine for a
 * scenario, creates one dynamic thread per scenario thread plus one
 * per started DMA transfer (whose steps are the transfer's
 * line-granular beats), and exposes exactly the interface a stateless
 * explorer needs: which threads are enabled, what the next step of
 * each would touch (predicted footprints), and step(t) to execute one
 * operation — including any consistency faults it takes, which are
 * resolved inside the step exactly as the kernel's trap-and-retry
 * path would. A ConsistencyOracle shadows every transfer, so a
 * schedule that loses a write-back or reads stale data is flagged at
 * the step where the stale value crosses the memory system.
 *
 * Schedules are replayable: thread indices are assigned
 * deterministically (scenario threads first, then beat threads in
 * transfer start order), so the same schedule on a fresh executor
 * reproduces the same run bit for bit.
 */

#ifndef VIC_MC_EXECUTOR_HH
#define VIC_MC_EXECUTOR_HH

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/pmap.hh"
#include "machine/cpu.hh"
#include "machine/machine.hh"
#include "mc/scenario.hh"
#include "oracle/consistency_oracle.hh"

namespace vic::mc
{

class Executor
{
  public:
    explicit Executor(const Scenario &scenario);
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** Dynamic threads so far (scenario threads + beat threads). */
    int numThreads() const { return static_cast<int>(threads.size()); }

    /** Thread indices that can step now, ascending. */
    std::vector<int> enabled();

    /** @return true iff every thread has run to completion. */
    bool allFinished();

    /** @return true iff nothing is enabled but work remains. */
    bool deadlocked() { return !allFinished() && enabled().empty(); }

    /** Predicted footprint of thread @p t's next step (no effects). */
    Footprint peek(int t);

    /** Union footprint of everything thread @p t may still do,
     *  including the beats of transfers it has yet to start. */
    Footprint remainingFootprint(int t);

    /** Execute one step of thread @p t (must be enabled). */
    const StepRecord &step(int t);

    const std::vector<StepRecord> &history() const { return hist; }

    /** Display name of thread @p t. */
    const std::string &threadName(int t) const
    { return threads[static_cast<std::size_t>(t)].name; }

    std::uint64_t violationCount() const
    { return oracle.violationCount(); }

    /** History index of the first violating step, or -1. */
    int firstViolationStep() const { return firstViolation; }

    /**
     * Order-insensitive hash of the observable machine state: memory
     * and cache contents of the scenario frames, page-table state of
     * the scenario slots, busy bits, thread progress and pending
     * transfer residues. Used for end-state censuses and (optionally)
     * pruning; the simulated clock is deliberately excluded.
     */
    std::uint64_t stateHash();

  private:
    struct ThreadState
    {
        std::string name;
        bool isBeat = false;
        std::size_t pc = 0;       ///< next op (beats: beats done)
        int scenarioIndex = -1;   ///< static threads: index in scenario
        DmaTransferId transfer = 0;
        int starter = -1;         ///< beat threads: starting thread
        std::vector<DmaTransferId> started;
        std::vector<int> startedBeatThreads;
        /** Drain threads (WeakStoreOrder): one buffered store. The
         *  single step deposits it into the memory system through the
         *  issuing CPU's cache. */
        bool isDrain = false;
        std::uint32_t sbCpu = 0;
        VirtAddr sbVa{0};
        std::uint32_t sbValue = 0;
        FrameId sbFrame = 0;
        std::uint64_t sbLine = 0;
        std::uint32_t sbColour = 0;
        std::uint8_t sbSlot = 0;
        std::uint8_t sbFrameSel = 0;
        int drainsIssued = 0; ///< issuing threads: drains created
    };

    const Scenario &scn;
    Machine machine;
    std::unique_ptr<Pmap> pmap;
    std::vector<std::unique_ptr<Cpu>> cpus;
    ConsistencyOracle oracle;

    /** Forwards transfers to the oracle while recording the lines the
     *  current step touches. */
    class Recorder;
    std::unique_ptr<Recorder> recorder;

    std::vector<ThreadState> threads;
    /** WeakStoreOrder: per-CPU FIFO of drain-thread indices; entries
     *  before sbHead[cpu] have drained. Empty in SC mode. */
    std::vector<std::vector<int>> sbFifo;
    std::vector<std::size_t> sbHead;
    std::set<FrameId> busyFrames;
    std::deque<std::vector<std::uint32_t>> readBufs;
    std::map<SpaceVa, FrameId> known; ///< demand-mappable slots
    std::vector<StepRecord> hist;
    std::uint32_t stamp = 1;
    int firstViolation = -1;

    std::uint32_t colours = 0;
    std::uint32_t lineBytes = 0;
    std::uint32_t lineWords = 0;

    FrameId frameOf(std::uint8_t frame_sel) const;
    VirtAddr slotVa(std::uint8_t slot, std::uint8_t frame_sel) const;

    bool opEnabled(const ThreadState &t);
    bool transfersComplete(const ThreadState &t);
    void predictOp(const Op &op, std::uint32_t cpu, Footprint &fp);
    void execute(int t, StepRecord &cur);

    bool weakOrder() const
    { return scn.memoryOrder == MemoryOrder::WeakStoreOrder; }
    bool bufferEmpty(std::uint32_t cpu) const;
    /** Any CPU still buffers a store into @p frame? */
    bool bufferedStoreTo(FrameId frame) const;
    /** Newest undrained store of @p cpu into @p frame (store-to-load
     *  forwarding source), or -1. */
    int forwardSource(std::uint32_t cpu, FrameId frame) const;
};

} // namespace vic::mc

#endif // VIC_MC_EXECUTOR_HH
