/**
 * @file
 * Stateless DPOR explorer over scenario schedules.
 *
 * Depth-first enumeration of maximal schedules with partial-order
 * reduction: sleep sets prune re-exploration of commuting branches,
 * and a persistent-set heuristic (a thread whose next step is
 * independent, line-for-line, of everything every other thread may
 * still do forms a singleton persistent set) collapses interleavings
 * that cannot be distinguished by any conflict. Every completed
 * schedule is canonicalised to its Mazurkiewicz trace (dependence-
 * preserving normal form), so the explorer can both count the
 * inequivalent interleavings exactly and assert that the reduction
 * explored each exactly once. The state space is re-executed from
 * scratch on every branch — executions are a few dozen steps on a
 * scaled-down machine, so statelessness buys determinism and
 * replayability for free.
 *
 * Races come from the happens-before detector over each completed
 * run; a race is *confirmed* when some schedule of the same scenario
 * also fails the ConsistencyOracle, and the shortest violating prefix
 * is kept as the minimal counterexample and re-executed to prove the
 * schedule deterministically reproduces the violation.
 */

#ifndef VIC_MC_EXPLORER_HH
#define VIC_MC_EXPLORER_HH

#include <string>
#include <vector>

#include "mc/race.hh"
#include "mc/scenario.hh"

namespace vic::mc
{

struct ExploreOptions
{
    /** Maximum complete schedules to execute before giving up. */
    std::uint64_t budget = 20000;
    bool sleepSets = true;
    bool persistentSets = true;
    /** Prune subtrees whose observable state hash was already seen.
     *  Off by default: hashing is collision-checked nowhere, so
     *  exhaustive counts only hold without it. */
    bool hashPrune = false;
    /** Hard bound on schedule length (safety net). */
    std::size_t maxSteps = 64;
};

struct ScenarioResult
{
    std::string scenario;
    std::string policy;
    MemoryOrder memoryOrder = MemoryOrder::SC;

    bool exhausted = true; ///< full space explored within budget
    bool deadlock = false; ///< some schedule blocked before finishing
    std::uint64_t executions = 0;      ///< complete maximal schedules
    std::uint64_t canonicalTraces = 0; ///< inequivalent interleavings
    std::uint64_t distinctEndStates = 0;
    std::uint64_t steps = 0; ///< machine steps incl. re-execution
    std::uint64_t sleepPruned = 0;
    std::uint64_t persistentPruned = 0;
    std::uint64_t maxDepth = 0; ///< longest schedule seen

    std::vector<RaceReport> races; ///< deduplicated across schedules
    std::uint64_t benignRaces = 0;
    /** Non-benign race pairs in a scenario where at least one
     *  schedule failed the oracle: the race demonstrably loses data. */
    std::uint64_t confirmedRaces = 0;
    /** Races pairing a DMA access with an undrained store's drain. */
    std::uint64_t weakWindowRaces = 0;

    std::uint64_t violatingRuns = 0;
    std::uint64_t totalViolations = 0;
    Schedule minimalCounterexample; ///< shortest violating prefix
    std::vector<std::string> minimalCounterexampleLabels;
    bool replayConfirmed = false; ///< replaying it violates again

    /** Sorted canonical-trace hashes of every explored run — the
     *  coverage baseline the fuzzer's samples are compared against. */
    std::vector<std::uint64_t> canonicalHashes;

    /** Non-benign reported races. */
    std::uint64_t reportedRaces() const
    { return races.size() - benignRaces; }

    /** Did the scenario meet its expectations? */
    bool passed(const Expectation &expect) const;
};

/** Exhaustively explore one scenario. */
ScenarioResult explore(const Scenario &scenario,
                       const ExploreOptions &options);

/** Explore many scenarios on @p jobs worker threads. Results are
 *  returned in input order and are independent of @p jobs. */
std::vector<ScenarioResult>
exploreMany(const std::vector<Scenario> &scenarios,
            const ExploreOptions &options, unsigned jobs);

// --- schedule fuzzing --------------------------------------------------

struct FuzzOptions
{
    /** Random maximal schedules to sample. */
    std::uint64_t samples = 200;
    /** Base seed; the per-scenario stream is derived from it with
     *  SplitMix64 (no wall clock, no entropy — same seed, same
     *  schedules, on any machine and any --jobs). */
    std::uint64_t seed = 0x5eed;
    /** Hard bound on schedule length (safety net). */
    std::size_t maxSteps = 64;
};

/** What a fuzzing pass over one scenario found. */
struct FuzzResult
{
    std::string scenario;
    std::string policy;
    MemoryOrder memoryOrder = MemoryOrder::SC;

    std::uint64_t samples = 0;   ///< schedules executed
    std::uint64_t steps = 0;     ///< machine steps executed
    std::uint64_t maxDepth = 0;
    std::uint64_t deadlockRuns = 0;

    std::uint64_t canonicalTraces = 0; ///< distinct traces sampled
    std::uint64_t distinctEndStates = 0;
    /** Traces not in the exhaustive baseline the caller passed in.
     *  Zero whenever DPOR exhausted the space — random sampling can
     *  then only rediscover known traces. */
    std::uint64_t newTraces = 0;

    std::vector<RaceReport> races; ///< deduplicated across samples
    std::uint64_t benignRaces = 0;
    std::uint64_t weakWindowRaces = 0;
    std::uint64_t violatingRuns = 0;
    std::uint64_t totalViolations = 0;
    Schedule minimalCounterexample; ///< shortest violating prefix
    std::vector<std::string> minimalCounterexampleLabels;
    bool replayConfirmed = false;

    std::uint64_t reportedRaces() const
    { return races.size() - benignRaces; }
};

/**
 * Sample random maximal schedules of one scenario. @p knownTraces is
 * the sorted canonical-hash baseline (ScenarioResult::canonicalHashes)
 * used to count newTraces; pass empty when no exhaustive pass ran.
 * The per-scenario stream is derived from options.seed and
 * @p scenarioIndex, so a catalog fuzzed in parallel samples the same
 * schedules as one fuzzed serially.
 */
FuzzResult fuzzSchedules(const Scenario &scenario,
                         const FuzzOptions &options,
                         std::size_t scenarioIndex,
                         const std::vector<std::uint64_t> &knownTraces);

/** Fuzz many scenarios on @p jobs worker threads. @p knownTraces is
 *  indexed like @p scenarios (may be empty). Results are returned in
 *  input order and are independent of @p jobs. */
std::vector<FuzzResult>
fuzzMany(const std::vector<Scenario> &scenarios,
         const FuzzOptions &options,
         const std::vector<std::vector<std::uint64_t>> &knownTraces,
         unsigned jobs);

} // namespace vic::mc

#endif // VIC_MC_EXPLORER_HH
