/**
 * @file
 * Alphabet and footprints of the interleaving model checker.
 *
 * A scenario (src/mc/scenario.hh) is a small concurrent program over
 * the operations that the paper's consistency hazards are made of: CPU
 * accesses through the virtually indexed caches, the pmap's DMA
 * preparation calls, page busy-bit synchronisation, and asynchronous
 * line-granular DMA transfers. The executor (src/mc/executor.hh) runs
 * one operation at a time under an explicit schedule; each executed
 * step records a Footprint — the physical lines it read and wrote,
 * the frames it touched, and which synchronisation domain it belongs
 * to. Footprints drive both the DPOR dependence relation (which
 * operations commute) and the happens-before race detector.
 */

#ifndef VIC_MC_EVENT_HH
#define VIC_MC_EVENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vic::mc
{

/**
 * CPU store-visibility model a scenario is explored under.
 *
 * SC: a store becomes globally visible in the step that executes it
 * (the model PR 4 verified). WeakStoreOrder: stores retire into a
 * per-CPU FIFO store buffer at issue and become visible only when a
 * separately schedulable drain step deposits them into the memory
 * system — the write-buffered hardware the paper's choreography must
 * also survive. Fences and busy-bit acquire points force drains:
 * they are not enabled while a relevant store is still buffered.
 */
enum class MemoryOrder : std::uint8_t
{
    SC,             ///< stores visible in program order, at issue
    WeakStoreOrder, ///< stores drain asynchronously, FIFO per CPU
};

/** Human-readable memory-order name ("sc" / "weak"). */
const char *memoryOrderName(MemoryOrder order);

/** Schedulable atomic operations. DmaBeat and StoreDrain never appear
 *  in a scenario thread: beats belong to dynamic per-transfer threads
 *  created when a DmaStart* operation executes, and drains belong to
 *  dynamic per-store threads created when a store issues under
 *  MemoryOrder::WeakStoreOrder. */
enum class OpKind : std::uint8_t
{
    CpuLoad,       ///< load through the data cache
    CpuStore,      ///< store through the data cache (weak: issue)
    CpuIFetch,     ///< fetch through the instruction cache
    PmapDmaRead,   ///< pmap->dmaRead(frame): flush before device read
    PmapDmaWrite,  ///< pmap->dmaWrite(frame): purge before device write
    PmapUnmap,     ///< pmap->remove(slot va)
    BusyAcquire,   ///< set the VM page busy bit (blocks CPU accesses)
    BusyRelease,   ///< clear the busy bit
    DmaStartRead,  ///< command the device to read memory (DMA-read)
    DmaStartWrite, ///< command the device to write memory (DMA-write)
    DmaWait,       ///< wait for this thread's transfers to complete
    DmaBeat,       ///< one line-granular beat of a pending transfer
    Fence,         ///< drain this CPU's store buffer (weak order only)
    StoreDrain,    ///< one buffered store leaving the store buffer
};

/** Human-readable operation name. */
const char *opKindName(OpKind kind);

/** One operation of a scenario thread. */
struct Op
{
    OpKind kind = OpKind::CpuLoad;
    /** CPU accesses and PmapUnmap: which scenario slot (virtual page)
     *  to touch. */
    std::uint8_t slot = 0;
    /** 0 = the frame under test, 1 = the bystander frame. */
    std::uint8_t frameSel = 0;
    /** DmaStart*: transfer length in cache lines. */
    std::uint32_t lines = 1;
};

/** A statically declared scenario thread. */
struct Thread
{
    std::string name;
    std::uint32_t cpu = 0; ///< processor its CPU accesses issue on
    std::vector<Op> ops;
};

/**
 * Memory and synchronisation footprint of one step. Line sets are
 * sorted, duplicate-free physical line numbers (pa / lineBytes).
 */
struct Footprint
{
    std::vector<std::uint64_t> readLines;
    std::vector<std::uint64_t> writeLines;
    std::vector<std::uint64_t> frames; ///< frames touched or guarded

    bool cpuData = false;  ///< CPU access through a cache
    std::uint32_t cpu = 0;
    bool inst = false;          ///< instruction-cache access
    std::uint32_t colour = 0;   ///< cache colour of the accessed va
    bool dmaAccess = false;     ///< a DMA beat touching memory
    bool pmapOp = false;        ///< explicit pmap call (lock-serialised)
    bool busyAcquire = false;
    bool busyRelease = false;
    /** Weak order: the step interacts with a per-CPU store buffer
     *  (issue, drain, fence, or a load that may forward from it).
     *  Same-CPU pairs of such steps never commute — the FIFO order
     *  and forwarding results depend on which runs first. */
    bool sbOp = false;
    std::uint32_t sbCpu = 0; ///< owning CPU of the store buffer

    bool busyOp() const { return busyAcquire || busyRelease; }

    /** Insert @p line into @p set keeping it sorted and unique. */
    static void addLine(std::vector<std::uint64_t> &set,
                        std::uint64_t line);
    static void addFrame(std::vector<std::uint64_t> &set,
                         std::uint64_t frame);
};

/** @return true iff the sorted sets @p a and @p b intersect. */
bool setsIntersect(const std::vector<std::uint64_t> &a,
                   const std::vector<std::uint64_t> &b);

/** A shared physical line written by at least one side (the classic
 *  data-conflict condition), or ~0 if none. */
std::uint64_t conflictingLine(const Footprint &a, const Footprint &b);

/**
 * DPOR dependence: may the two steps fail to commute? Sound
 * over-approximation; see docs/VERIFICATION.md. Two steps are
 * dependent if they share a written physical line, are both explicit
 * pmap operations (one spinlock), interact through a busy bit on a
 * common frame, are CPU accesses through the same cache colour of the
 * same processor's same cache (eviction interaction in a direct-mapped
 * virtually indexed cache), or pair a DMA beat with any CPU access
 * (DMA reads memory whose content depends on cache residency).
 */
bool dependent(const Footprint &a, const Footprint &b);

/** One executed step of a schedule. */
struct StepRecord
{
    int thread = -1;     ///< dynamic thread index
    std::size_t pc = 0;  ///< op index (beat threads: beat number)
    OpKind kind = OpKind::CpuLoad;
    std::string label;   ///< "thread:op" for reports
    Footprint fp;
    bool faulted = false;          ///< the CPU access trapped
    std::uint64_t violations = 0;  ///< oracle violations in this step
    int startedBeat = -1;          ///< beat thread a DmaStart created
    std::vector<int> joins;        ///< beat threads a DmaWait joined
};

/** A schedule: the sequence of dynamic thread indices stepped. */
using Schedule = std::vector<int>;

} // namespace vic::mc

#endif // VIC_MC_EVENT_HH
