#include "mc/race.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace vic::mc
{

namespace
{

using Clock = std::vector<std::uint64_t>;

void
join(Clock &into, const Clock &from)
{
    for (std::size_t i = 0; i < into.size(); ++i)
        into[i] = std::max(into[i], from[i]);
}

/** i happened-before j iff j's clock has caught up with i's own tick. */
bool
happensBefore(const Clock &vci, int ti, const Clock &vcj)
{
    return vcj[static_cast<std::size_t>(ti)] >=
           vci[static_cast<std::size_t>(ti)];
}

} // namespace

std::string
RaceReport::key() const
{
    // Order-insensitive: the same unordered pair surfaces with its
    // roles swapped when both schedule orders are explored, and must
    // dedup to one race, not two.
    const bool ab = labelA <= labelB;
    return (ab ? labelA : labelB) + "|" + (ab ? labelB : labelA) +
           "|" + std::to_string(line);
}

std::vector<RaceReport>
detectRaces(const std::vector<StepRecord> &hist, int num_threads,
            const CoherenceModel &coh)
{
    const std::size_t n = static_cast<std::size_t>(num_threads);
    std::vector<Clock> clock(n, Clock(n, 0));
    std::vector<Clock> vc(hist.size());

    std::map<std::uint64_t, Clock> accessClock;  ///< per frame
    std::map<std::uint64_t, Clock> releaseClock; ///< per frame
    Clock pmapClock(n, 0);
    std::map<int, Clock> forkClock; ///< dynamic thread -> start clock
    std::map<std::uint32_t, Clock> drainClock; ///< per CPU buffer

    for (std::size_t i = 0; i < hist.size(); ++i) {
        const StepRecord &s = hist[i];
        const std::size_t t = static_cast<std::size_t>(s.thread);
        vic_assert(t < n, "step of unknown thread");
        Clock &c = clock[t];

        // Fork edges: a beat follows its DmaStart, a drain follows
        // the issue of the store it carries (issue -> drain program
        // order of the split weak-mode store).
        if ((s.kind == OpKind::DmaBeat || s.kind == OpKind::StoreDrain)
            && s.pc == 0) {
            auto it = forkClock.find(s.thread);
            vic_assert(it != forkClock.end(),
                       "dynamic thread before its fork");
            join(c, it->second);
        }
        // A fence completes only after its CPU's buffer drained:
        // everything after the fence follows every earlier drain.
        if (s.kind == OpKind::Fence) {
            auto it = drainClock.find(s.fp.sbCpu);
            if (it != drainClock.end())
                join(c, it->second);
        }
        for (int j : s.joins)
            join(c, clock[static_cast<std::size_t>(j)]);
        if (s.fp.busyAcquire) {
            for (std::uint64_t f : s.fp.frames) {
                auto it = accessClock.find(f);
                if (it != accessClock.end())
                    join(c, it->second);
            }
        }
        if (s.fp.cpuData) {
            for (std::uint64_t f : s.fp.frames) {
                auto it = releaseClock.find(f);
                if (it != releaseClock.end())
                    join(c, it->second);
            }
        }
        if (s.fp.pmapOp || s.faulted)
            join(c, pmapClock);

        ++c[t];
        vc[i] = c;

        if (s.startedBeat >= 0)
            forkClock[s.startedBeat] = c;
        if (s.kind == OpKind::StoreDrain) {
            auto [it, fresh] = drainClock.try_emplace(s.fp.sbCpu, n, 0);
            (void)fresh;
            join(it->second, c);
        }
        if (s.fp.busyRelease) {
            for (std::uint64_t f : s.fp.frames)
                releaseClock[f] = c;
        }
        if (s.fp.pmapOp || s.faulted)
            join(pmapClock, c);
        if (s.fp.cpuData || s.fp.dmaAccess) {
            for (std::uint64_t f : s.fp.frames) {
                auto [it, fresh] = accessClock.try_emplace(f, n, 0);
                (void)fresh;
                join(it->second, c);
            }
        }
    }

    std::vector<RaceReport> out;
    for (std::size_t i = 0; i < hist.size(); ++i) {
        const StepRecord &a = hist[i];
        if (!a.fp.cpuData && !a.fp.dmaAccess)
            continue;
        for (std::size_t j = i + 1; j < hist.size(); ++j) {
            const StepRecord &b = hist[j];
            if (a.thread == b.thread)
                continue;
            if (!b.fp.cpuData && !b.fp.dmaAccess)
                continue;
            // CPU/CPU through the same cache: the cache itself orders
            // the pair (every access reads/writes the one live copy),
            // coherent by construction on any machine.
            if (!a.fp.dmaAccess && !b.fp.dmaAccess &&
                a.fp.cpu == b.fp.cpu)
                continue;
            const std::uint64_t line = conflictingLine(a.fp, b.fp);
            if (line == ~std::uint64_t(0))
                continue;
            if (happensBefore(vc[i], a.thread, vc[j]))
                continue;
            RaceReport r;
            r.stepA = static_cast<int>(i);
            r.stepB = static_cast<int>(j);
            r.labelA = a.label;
            r.labelB = b.label;
            r.line = line;
            if (!a.fp.dmaAccess && !b.fp.dmaAccess) {
                // Cross-cache CPU/CPU: benign only when the machine
                // actually runs an inter-cache coherence protocol —
                // previously assumed unconditionally, which hid real
                // races on non-coherent multi-cache configs.
                r.benign = coh.cpuCoherent;
            } else if (a.fp.dmaAccess && b.fp.dmaAccess) {
                // DMA/DMA torn transfer: snooping is between caches
                // and devices, it cannot order two device transfers.
                r.benign = false;
            } else {
                r.benign = coh.dmaSnoops;
            }
            r.weakWindow = a.kind == OpKind::StoreDrain ||
                           b.kind == OpKind::StoreDrain;
            out.push_back(std::move(r));
        }
    }
    return out;
}

} // namespace vic::mc
