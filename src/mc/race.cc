#include "mc/race.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace vic::mc
{

namespace
{

using Clock = std::vector<std::uint64_t>;

void
join(Clock &into, const Clock &from)
{
    for (std::size_t i = 0; i < into.size(); ++i)
        into[i] = std::max(into[i], from[i]);
}

/** i happened-before j iff j's clock has caught up with i's own tick. */
bool
happensBefore(const Clock &vci, int ti, const Clock &vcj)
{
    return vcj[static_cast<std::size_t>(ti)] >=
           vci[static_cast<std::size_t>(ti)];
}

} // namespace

std::string
RaceReport::key() const
{
    return labelA + "|" + labelB + "|" + std::to_string(line);
}

std::vector<RaceReport>
detectRaces(const std::vector<StepRecord> &hist, int num_threads,
            bool snooping)
{
    const std::size_t n = static_cast<std::size_t>(num_threads);
    std::vector<Clock> clock(n, Clock(n, 0));
    std::vector<Clock> vc(hist.size());

    std::map<std::uint64_t, Clock> accessClock;  ///< per frame
    std::map<std::uint64_t, Clock> releaseClock; ///< per frame
    Clock pmapClock(n, 0);
    std::map<int, Clock> forkClock; ///< dynamic thread -> start clock
    std::map<std::uint32_t, Clock> drainClock; ///< per CPU buffer

    for (std::size_t i = 0; i < hist.size(); ++i) {
        const StepRecord &s = hist[i];
        const std::size_t t = static_cast<std::size_t>(s.thread);
        vic_assert(t < n, "step of unknown thread");
        Clock &c = clock[t];

        // Fork edges: a beat follows its DmaStart, a drain follows
        // the issue of the store it carries (issue -> drain program
        // order of the split weak-mode store).
        if ((s.kind == OpKind::DmaBeat || s.kind == OpKind::StoreDrain)
            && s.pc == 0) {
            auto it = forkClock.find(s.thread);
            vic_assert(it != forkClock.end(),
                       "dynamic thread before its fork");
            join(c, it->second);
        }
        // A fence completes only after its CPU's buffer drained:
        // everything after the fence follows every earlier drain.
        if (s.kind == OpKind::Fence) {
            auto it = drainClock.find(s.fp.sbCpu);
            if (it != drainClock.end())
                join(c, it->second);
        }
        for (int j : s.joins)
            join(c, clock[static_cast<std::size_t>(j)]);
        if (s.fp.busyAcquire) {
            for (std::uint64_t f : s.fp.frames) {
                auto it = accessClock.find(f);
                if (it != accessClock.end())
                    join(c, it->second);
            }
        }
        if (s.fp.cpuData) {
            for (std::uint64_t f : s.fp.frames) {
                auto it = releaseClock.find(f);
                if (it != releaseClock.end())
                    join(c, it->second);
            }
        }
        if (s.fp.pmapOp || s.faulted)
            join(c, pmapClock);

        ++c[t];
        vc[i] = c;

        if (s.startedBeat >= 0)
            forkClock[s.startedBeat] = c;
        if (s.kind == OpKind::StoreDrain) {
            auto [it, fresh] = drainClock.try_emplace(s.fp.sbCpu, n, 0);
            (void)fresh;
            join(it->second, c);
        }
        if (s.fp.busyRelease) {
            for (std::uint64_t f : s.fp.frames)
                releaseClock[f] = c;
        }
        if (s.fp.pmapOp || s.faulted)
            join(pmapClock, c);
        if (s.fp.cpuData || s.fp.dmaAccess) {
            for (std::uint64_t f : s.fp.frames) {
                auto [it, fresh] = accessClock.try_emplace(f, n, 0);
                (void)fresh;
                join(it->second, c);
            }
        }
    }

    std::vector<RaceReport> out;
    for (std::size_t i = 0; i < hist.size(); ++i) {
        const StepRecord &a = hist[i];
        if (!a.fp.cpuData && !a.fp.dmaAccess)
            continue;
        for (std::size_t j = i + 1; j < hist.size(); ++j) {
            const StepRecord &b = hist[j];
            if (a.thread == b.thread)
                continue;
            if (!b.fp.cpuData && !b.fp.dmaAccess)
                continue;
            if (!a.fp.dmaAccess && !b.fp.dmaAccess)
                continue; // CPU/CPU: hardware-coherent across caches
            const std::uint64_t line = conflictingLine(a.fp, b.fp);
            if (line == ~std::uint64_t(0))
                continue;
            if (happensBefore(vc[i], a.thread, vc[j]))
                continue;
            RaceReport r;
            r.stepA = static_cast<int>(i);
            r.stepB = static_cast<int>(j);
            r.labelA = a.label;
            r.labelB = b.label;
            r.line = line;
            r.benign = snooping && (a.fp.dmaAccess != b.fp.dmaAccess);
            // The pair loop admits only CPU/DMA and DMA/DMA pairs, so
            // a drain on either side makes this a weak-order window.
            r.weakWindow = a.kind == OpKind::StoreDrain ||
                           b.kind == OpKind::StoreDrain;
            out.push_back(std::move(r));
        }
    }
    return out;
}

} // namespace vic::mc
