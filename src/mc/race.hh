/**
 * @file
 * Vector-clock happens-before race detector.
 *
 * Runs over one completed schedule's step history and flags pairs of
 * conflicting physical-memory accesses that no synchronisation
 * orders. Conflicts are the data races the paper's consistency
 * hazards grow from: a CPU store against a DMA beat (lost write-back
 * or shadowed device data) and two DMA beats against each other
 * (torn transfer). Happens-before edges:
 *
 *  - program order within each dynamic thread;
 *  - DMA fork/join: a transfer's start precedes its beats (the device
 *    cannot move data before it is commanded), and a DmaWait follows
 *    the final beat of every transfer it waits on;
 *  - busy-bit synchronisation: acquiring a frame's busy bit follows
 *    every earlier access to that frame (the acquirer evicts the
 *    translations and completes a TLB shootdown, which drains
 *    in-flight accesses), and every CPU access after a release
 *    follows that release (the access refaults and re-enters through
 *    the now-unblocked mapping);
 *  - the pmap lock: explicit pmap operations, and the pmap work done
 *    inside a faulting CPU access, serialise in schedule order.
 *
 * Whether an unordered conflicting pair is *benign* — racy in time
 * but not in value — depends on what the machine's hardware keeps
 * coherent, which the caller passes in as a CoherenceModel derived
 * from the actual MachineParams:
 *
 *  - CPU/CPU through the SAME cache is ordered by that cache itself
 *    and never reported;
 *  - CPU/CPU through DIFFERENT caches is benign iff the machine runs
 *    an inter-cache protocol (MESI bus); on a non-coherent
 *    multiprocessor it is a genuine consistency race;
 *  - CPU/DMA is benign iff the DMA engine snoops the caches;
 *  - DMA/DMA (a torn transfer) is NEVER benign: no cache protocol
 *    orders two device transfers against each other.
 *
 * Everything non-benign is a candidate consistency race; the explorer
 * confirms candidates by exhibiting a schedule the ConsistencyOracle
 * rejects.
 */

#ifndef VIC_MC_RACE_HH
#define VIC_MC_RACE_HH

#include <string>
#include <vector>

#include "machine/machine_params.hh"
#include "mc/event.hh"

namespace vic::mc
{

/** What the machine's hardware keeps coherent — drives the benign
 *  classification instead of a hard-coded assumption. */
struct CoherenceModel
{
    /** DMA engine snoops the caches (CPU/DMA pairs value-coherent). */
    bool dmaSnoops = false;
    /** Cross-cache CPU/CPU pairs are kept coherent (MESI bus, or a
     *  single cache because the machine is a uniprocessor). */
    bool cpuCoherent = true;

    static CoherenceModel
    of(const MachineParams &mp)
    {
        return {mp.dmaSnoops, mp.providesCpuCoherence()};
    }
};

/** One unordered conflicting pair, anchored at its schedule steps. */
struct RaceReport
{
    int stepA = -1;
    int stepB = -1;
    std::string labelA;
    std::string labelB;
    std::uint64_t line = 0; ///< a conflicting physical line
    bool benign = false;    ///< hardware-coherent pair (see above)
    /** Weak-order window: an access overlapping a store that was
     *  issued but not yet drained — invisible under SC, where the
     *  store and its visibility are one atomic step. */
    bool weakWindow = false;

    /** Stable identity of the pair across schedules, for dedup. */
    std::string key() const;
};

/** Detect races over @p hist, classifying benignity per @p coh. */
std::vector<RaceReport> detectRaces(const std::vector<StepRecord> &hist,
                                    int num_threads,
                                    const CoherenceModel &coh);

} // namespace vic::mc

#endif // VIC_MC_RACE_HH
