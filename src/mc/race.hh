/**
 * @file
 * Vector-clock happens-before race detector.
 *
 * Runs over one completed schedule's step history and flags pairs of
 * conflicting physical-memory accesses that no synchronisation
 * orders. Conflicts are the data races the paper's consistency
 * hazards grow from: a CPU store against a DMA beat (lost write-back
 * or shadowed device data) and two DMA beats against each other
 * (torn transfer). Happens-before edges:
 *
 *  - program order within each dynamic thread;
 *  - DMA fork/join: a transfer's start precedes its beats (the device
 *    cannot move data before it is commanded), and a DmaWait follows
 *    the final beat of every transfer it waits on;
 *  - busy-bit synchronisation: acquiring a frame's busy bit follows
 *    every earlier access to that frame (the acquirer evicts the
 *    translations and completes a TLB shootdown, which drains
 *    in-flight accesses), and every CPU access after a release
 *    follows that release (the access refaults and re-enters through
 *    the now-unblocked mapping);
 *  - the pmap lock: explicit pmap operations, and the pmap work done
 *    inside a faulting CPU access, serialise in schedule order.
 *
 * An unordered CPU/DMA conflict on a snooping machine is reported as
 * benign: the hardware keeps the cache and the transfer coherent, so
 * the pair is racy in time but not in value. Everything else is a
 * candidate consistency race; the explorer confirms candidates by
 * exhibiting a schedule the ConsistencyOracle rejects.
 */

#ifndef VIC_MC_RACE_HH
#define VIC_MC_RACE_HH

#include <string>
#include <vector>

#include "mc/event.hh"

namespace vic::mc
{

/** One unordered conflicting pair, anchored at its schedule steps. */
struct RaceReport
{
    int stepA = -1;
    int stepB = -1;
    std::string labelA;
    std::string labelB;
    std::uint64_t line = 0; ///< a conflicting physical line
    bool benign = false;    ///< snooping-mode CPU/DMA pair
    /** Weak-order window: a DMA access overlapping a store that was
     *  issued but not yet drained — invisible under SC, where the
     *  store and its visibility are one atomic step. */
    bool weakWindow = false;

    /** Stable identity of the pair across schedules, for dedup. */
    std::string key() const;
};

/** Detect races over @p hist; @p snooping marks CPU/DMA pairs benign. */
std::vector<RaceReport> detectRaces(const std::vector<StepRecord> &hist,
                                    int num_threads, bool snooping);

} // namespace vic::mc

#endif // VIC_MC_RACE_HH
