#include "mc/executor.hh"

#include "common/logging.hh"

namespace vic::mc
{

/** MemoryObserver sandwich: records the physical lines the current
 *  step touches, then forwards every transfer to the oracle. */
class Executor::Recorder : public MemoryObserver
{
  public:
    Recorder(ConsistencyOracle &golden, std::uint32_t line_bytes,
             std::uint32_t page_bytes)
        : oracle(golden), lineBytes(line_bytes), pageBytes(page_bytes)
    {
    }

    void begin(StepRecord *step) { cur = step; }
    void end() { cur = nullptr; }
    StepRecord *currentStep() { return cur; }

    void
    cpuLoad(PhysAddr pa, std::uint32_t observed) override
    {
        noteRead(pa);
        oracle.cpuLoad(pa, observed);
    }

    void
    cpuIFetch(PhysAddr pa, std::uint32_t observed) override
    {
        noteRead(pa);
        oracle.cpuIFetch(pa, observed);
    }

    void
    cpuStore(PhysAddr pa, std::uint32_t value) override
    {
        noteWrite(pa);
        oracle.cpuStore(pa, value);
    }

    void
    dmaWrite(PhysAddr pa, std::uint32_t value) override
    {
        noteWrite(pa);
        oracle.dmaWrite(pa, value);
    }

    void
    dmaRead(PhysAddr pa, std::uint32_t observed) override
    {
        noteRead(pa);
        oracle.dmaRead(pa, observed);
    }

  private:
    ConsistencyOracle &oracle;
    std::uint32_t lineBytes;
    std::uint32_t pageBytes;
    StepRecord *cur = nullptr;

    void
    noteRead(PhysAddr pa)
    {
        if (cur == nullptr)
            return;
        Footprint::addLine(cur->fp.readLines, pa.value / lineBytes);
        Footprint::addFrame(cur->fp.frames, pa.value / pageBytes);
    }

    void
    noteWrite(PhysAddr pa)
    {
        if (cur == nullptr)
            return;
        Footprint::addLine(cur->fp.writeLines, pa.value / lineBytes);
        Footprint::addFrame(cur->fp.frames, pa.value / pageBytes);
    }
};

namespace
{

/** Frames the catalog plays with: 7 is the page under test, 9 the
 *  bystander every scenario's second frame maps to. */
constexpr FrameId kFrameUnderTest = 7;
constexpr FrameId kBystanderFrame = 9;

bool
isCpuOp(OpKind k)
{
    return k == OpKind::CpuLoad || k == OpKind::CpuStore ||
           k == OpKind::CpuIFetch;
}

} // namespace

Executor::Executor(const Scenario &scenario)
    : scn(scenario), machine(scenario.mparams),
      oracle(scenario.mparams.numFrames * scenario.mparams.pageBytes)
{
    pmap = Pmap::create(machine, scn.policy);
    colours = machine.dcache().geometry().numColours();
    lineBytes = scn.mparams.dcacheLineBytes;
    lineWords = lineBytes / 4;
    sbFifo.resize(machine.numCpus());
    sbHead.assign(machine.numCpus(), 0);

    recorder = std::make_unique<Recorder>(oracle, lineBytes,
                                          scn.mparams.pageBytes);
    machine.setObserver(recorder.get());
    oracle.setViolationHook([this](const ConsistencyOracle::Violation &) {
        if (StepRecord *cur = recorder->currentStep())
            ++cur->violations;
        if (firstViolation < 0)
            firstViolation = static_cast<int>(hist.size());
    });

    for (std::uint32_t i = 0; i < machine.numCpus(); ++i) {
        cpus.push_back(std::make_unique<Cpu>(machine, i));
        cpus.back()->setSpace(1);
        cpus.back()->setFaultHandler([this](const Fault &f) {
            if (pmap->resolveConsistencyFault(f.address, f.access))
                return true;
            auto it = known.find(f.address);
            if (f.type == FaultType::Unmapped && it != known.end()) {
                pmap->enter(f.address, it->second, Protection::all(),
                            f.access, {});
                return true;
            }
            return false;
        });
    }

    for (std::size_t i = 0; i < scn.threads.size(); ++i) {
        ThreadState t;
        t.name = scn.threads[i].name;
        t.scenarioIndex = static_cast<int>(i);
        threads.push_back(std::move(t));
        const Thread &st = scn.threads[i];
        vic_assert(st.cpu < machine.numCpus(),
                   "scenario thread on missing cpu %u", st.cpu);
    }
}

Executor::~Executor()
{
    machine.setObserver(nullptr);
    oracle.setViolationHook(nullptr);
}

FrameId
Executor::frameOf(std::uint8_t frame_sel) const
{
    return frame_sel == 0 ? kFrameUnderTest : kBystanderFrame;
}

VirtAddr
Executor::slotVa(std::uint8_t slot, std::uint8_t frame_sel) const
{
    const Slot &s = scn.slots[slot];
    // Fold colour, alias replica and frame choice into distinct
    // virtual pages; +1 keeps page zero unused, and the bystander
    // offset of 2*colours pages preserves the slot's cache colour.
    const std::uint64_t page =
        std::uint64_t(s.replica) * colours + 1 + s.colour +
        (frame_sel != 0 ? 2ull * colours : 0ull);
    return VirtAddr(page * scn.mparams.pageBytes);
}

bool
Executor::bufferEmpty(std::uint32_t cpu) const
{
    return sbHead[cpu] == sbFifo[cpu].size();
}

bool
Executor::bufferedStoreTo(FrameId frame) const
{
    for (std::size_t c = 0; c < sbFifo.size(); ++c)
        for (std::size_t i = sbHead[c]; i < sbFifo[c].size(); ++i)
            if (threads[static_cast<std::size_t>(sbFifo[c][i])]
                    .sbFrame == frame)
                return true;
    return false;
}

int
Executor::forwardSource(std::uint32_t cpu, FrameId frame) const
{
    for (std::size_t i = sbFifo[cpu].size(); i > sbHead[cpu]; --i) {
        const int idx = sbFifo[cpu][i - 1];
        if (threads[static_cast<std::size_t>(idx)].sbFrame == frame)
            return idx;
    }
    return -1;
}

bool
Executor::transfersComplete(const ThreadState &t)
{
    for (DmaTransferId id : t.started)
        if (machine.dma().transferPending(id))
            return false;
    return true;
}

bool
Executor::opEnabled(const ThreadState &t)
{
    const Thread &st = scn.threads[static_cast<std::size_t>(
        t.scenarioIndex)];
    const Op &op = st.ops[t.pc];
    if (isCpuOp(op.kind))
        return busyFrames.count(frameOf(op.frameSel)) == 0;
    if (op.kind == OpKind::DmaWait)
        return transfersComplete(t);
    if (op.kind == OpKind::BusyAcquire)
        // Weak order: acquiring the busy bit is an acquire point that
        // forces every CPU's buffered stores to the frame to drain
        // first — the kernel's guard is only sound if the stores it
        // fences off are actually in memory-visible order.
        return busyFrames.count(frameOf(op.frameSel)) == 0 &&
               !bufferedStoreTo(frameOf(op.frameSel));
    if (op.kind == OpKind::Fence)
        return bufferEmpty(st.cpu);
    return true;
}

std::vector<int>
Executor::enabled()
{
    std::vector<int> out;
    for (std::size_t i = 0; i < threads.size(); ++i) {
        const ThreadState &t = threads[i];
        if (t.isBeat) {
            if (machine.dma().transferPending(t.transfer))
                out.push_back(static_cast<int>(i));
            continue;
        }
        if (t.isDrain) {
            // FIFO: only the oldest undrained store of a CPU's buffer
            // may leave it.
            if (t.pc == 0 && sbHead[t.sbCpu] < sbFifo[t.sbCpu].size() &&
                sbFifo[t.sbCpu][sbHead[t.sbCpu]] == static_cast<int>(i))
                out.push_back(static_cast<int>(i));
            continue;
        }
        const Thread &st = scn.threads[static_cast<std::size_t>(
            t.scenarioIndex)];
        if (t.pc < st.ops.size() && opEnabled(t))
            out.push_back(static_cast<int>(i));
    }
    return out;
}

bool
Executor::allFinished()
{
    for (const ThreadState &t : threads) {
        if (t.isBeat) {
            if (machine.dma().transferPending(t.transfer))
                return false;
            continue;
        }
        if (t.isDrain) {
            if (t.pc == 0)
                return false;
            continue;
        }
        const Thread &st = scn.threads[static_cast<std::size_t>(
            t.scenarioIndex)];
        if (t.pc < st.ops.size())
            return false;
    }
    return true;
}

void
Executor::predictOp(const Op &op, std::uint32_t cpu, Footprint &fp)
{
    const FrameId frame = frameOf(op.frameSel);
    const std::uint64_t frame_line =
        frame * (scn.mparams.pageBytes / lineBytes);
    const std::uint32_t page_lines = scn.mparams.pageBytes / lineBytes;

    switch (op.kind) {
      case OpKind::CpuLoad:
      case OpKind::CpuStore:
      case OpKind::CpuIFetch: {
        fp.cpuData = true;
        fp.cpu = cpu;
        fp.inst = op.kind == OpKind::CpuIFetch;
        const VirtAddr va = slotVa(op.slot, op.frameSel);
        fp.colour = fp.inst ? machine.icache().geometry().colourOf(va)
                            : machine.dcache().geometry().colourOf(va);
        Footprint::addFrame(fp.frames, frame);
        if (op.kind == OpKind::CpuStore)
            Footprint::addLine(fp.writeLines, frame_line);
        else
            Footprint::addLine(fp.readLines, frame_line);
        break;
      }
      case OpKind::PmapDmaRead:
      case OpKind::PmapDmaWrite:
      case OpKind::PmapUnmap:
        fp.pmapOp = true;
        Footprint::addFrame(fp.frames, frame);
        for (std::uint32_t i = 0; i < page_lines; ++i)
            Footprint::addLine(fp.writeLines, frame_line + i);
        break;
      case OpKind::BusyAcquire:
        fp.busyAcquire = true;
        Footprint::addFrame(fp.frames, frame);
        break;
      case OpKind::BusyRelease:
        fp.busyRelease = true;
        Footprint::addFrame(fp.frames, frame);
        break;
      case OpKind::DmaStartRead:
      case OpKind::DmaStartWrite:
        // The command itself latches device state without touching
        // memory; the beats carry the transfer's data footprint.
        Footprint::addFrame(fp.frames, frame);
        break;
      case OpKind::Fence:
        fp.sbOp = true;
        fp.sbCpu = cpu;
        break;
      case OpKind::DmaWait:
      case OpKind::DmaBeat:
      case OpKind::StoreDrain:
        break;
    }
    if (weakOrder() && isCpuOp(op.kind)) {
        fp.sbOp = true;
        fp.sbCpu = cpu;
    }
}

Footprint
Executor::peek(int t)
{
    const ThreadState &ts = threads[static_cast<std::size_t>(t)];
    Footprint fp;
    if (ts.isBeat) {
        DmaEngine &dma = machine.dma();
        for (std::size_t i = 0; i < dma.pendingTransfers(); ++i) {
            auto beat = dma.nextBeat(i);
            if (!beat || beat->id != ts.transfer)
                continue;
            fp.dmaAccess = true;
            Footprint::addFrame(fp.frames,
                                beat->pa.value / scn.mparams.pageBytes);
            for (std::uint32_t w = 0; w < beat->nwords; ++w) {
                const std::uint64_t line =
                    (beat->pa.value + std::uint64_t(w) * 4) / lineBytes;
                if (beat->deviceWrites)
                    Footprint::addLine(fp.writeLines, line);
                else
                    Footprint::addLine(fp.readLines, line);
            }
            break;
        }
        return fp;
    }
    if (ts.isDrain) {
        if (ts.pc != 0)
            return fp;
        fp.cpuData = true;
        fp.cpu = ts.sbCpu;
        fp.colour = ts.sbColour;
        fp.sbOp = true;
        fp.sbCpu = ts.sbCpu;
        Footprint::addFrame(fp.frames, ts.sbFrame);
        Footprint::addLine(fp.writeLines, ts.sbLine);
        return fp;
    }
    const Thread &st = scn.threads[static_cast<std::size_t>(
        ts.scenarioIndex)];
    if (ts.pc < st.ops.size()) {
        const Op &op = st.ops[ts.pc];
        predictOp(op, st.cpu, fp);
        if (weakOrder() && op.kind == OpKind::CpuStore) {
            // The issue step only enqueues: no line becomes visible
            // until the drain, which carries the write footprint.
            fp.writeLines.clear();
        } else if (weakOrder() && op.kind == OpKind::CpuLoad &&
                   forwardSource(st.cpu, frameOf(op.frameSel)) >= 0) {
            // Store-to-load forwarding bypasses the memory system.
            fp.readLines.clear();
        }
    }
    return fp;
}

Footprint
Executor::remainingFootprint(int t)
{
    const ThreadState &ts = threads[static_cast<std::size_t>(t)];
    Footprint fp;
    const std::uint32_t page_lines = scn.mparams.pageBytes / lineBytes;

    if (ts.isBeat) {
        // Conservative: the rest of the transfer may touch any line
        // of its frame.
        DmaEngine &dma = machine.dma();
        if (!dma.transferPending(ts.transfer))
            return fp;
        Footprint beat = peek(t);
        fp = beat;
        if (!fp.frames.empty()) {
            const std::uint64_t frame_line = fp.frames[0] * page_lines;
            for (std::uint32_t i = 0; i < page_lines; ++i) {
                Footprint::addLine(fp.readLines, frame_line + i);
                Footprint::addLine(fp.writeLines, frame_line + i);
            }
        }
        return fp;
    }

    if (ts.isDrain)
        return ts.pc == 0 ? peek(t) : fp;

    const Thread &st = scn.threads[static_cast<std::size_t>(
        ts.scenarioIndex)];
    for (std::size_t pc = ts.pc; pc < st.ops.size(); ++pc) {
        const Op &op = st.ops[pc];
        Footprint one;
        predictOp(op, st.cpu, one);
        if (op.kind == OpKind::DmaStartRead ||
            op.kind == OpKind::DmaStartWrite) {
            // Account for the beats the start will spawn.
            one.dmaAccess = true;
            const std::uint64_t frame_line =
                frameOf(op.frameSel) * page_lines;
            for (std::uint32_t i = 0; i < op.lines; ++i) {
                if (op.kind == OpKind::DmaStartWrite)
                    Footprint::addLine(one.writeLines, frame_line + i);
                else
                    Footprint::addLine(one.readLines, frame_line + i);
            }
        }
        for (std::uint64_t l : one.readLines)
            Footprint::addLine(fp.readLines, l);
        for (std::uint64_t l : one.writeLines)
            Footprint::addLine(fp.writeLines, l);
        for (std::uint64_t f : one.frames)
            Footprint::addFrame(fp.frames, f);
        fp.cpuData |= one.cpuData;
        fp.cpu = one.cpuData ? one.cpu : fp.cpu;
        fp.inst |= one.inst;
        fp.colour = one.cpuData ? one.colour : fp.colour;
        fp.dmaAccess |= one.dmaAccess;
        fp.pmapOp |= one.pmapOp;
        fp.busyAcquire |= one.busyAcquire;
        fp.busyRelease |= one.busyRelease;
        fp.sbOp |= one.sbOp;
        fp.sbCpu = one.sbOp ? one.sbCpu : fp.sbCpu;
    }
    return fp;
}

void
Executor::execute(int t, StepRecord &cur)
{
    ThreadState &ts = threads[static_cast<std::size_t>(t)];

    if (ts.isBeat) {
        cur.kind = OpKind::DmaBeat;
        cur.fp.dmaAccess = true;
        const bool stepped = machine.dma().stepTransfer(ts.transfer);
        vic_assert(stepped, "beat thread stepped without pending beat");
        ++ts.pc;
        return;
    }

    if (ts.isDrain) {
        // The buffered store leaves the FIFO and enters the memory
        // system through the issuing CPU's cache; the oracle's shadow
        // already holds the value from issue time, so re-recording it
        // here is idempotent and settles it into coherence order.
        cur.kind = OpKind::StoreDrain;
        vic_assert(sbHead[ts.sbCpu] < sbFifo[ts.sbCpu].size() &&
                       sbFifo[ts.sbCpu][sbHead[ts.sbCpu]] == t,
                   "drain out of FIFO order");
        Cpu &cpu = *cpus[ts.sbCpu];
        const std::uint64_t faults_before = cpu.faultCount();
        Cpu::Op access;
        access.va = ts.sbVa;
        access.type = AccessType::Store;
        access.value = ts.sbValue;
        cpu.run(&access, 1);
        cur.faulted = cpu.faultCount() != faults_before;
        cur.fp.cpuData = true;
        cur.fp.cpu = ts.sbCpu;
        cur.fp.colour = ts.sbColour;
        cur.fp.sbOp = true;
        cur.fp.sbCpu = ts.sbCpu;
        Footprint::addFrame(cur.fp.frames, ts.sbFrame);
        ++sbHead[ts.sbCpu];
        ++ts.pc;
        return;
    }

    const Thread &st = scn.threads[static_cast<std::size_t>(
        ts.scenarioIndex)];
    const Op &op = st.ops[ts.pc];
    cur.kind = op.kind;
    const FrameId frame = frameOf(op.frameSel);
    const std::uint32_t page_lines = scn.mparams.pageBytes / lineBytes;
    const std::uint64_t frame_line = frame * page_lines;

    switch (op.kind) {
      case OpKind::CpuLoad:
      case OpKind::CpuStore:
      case OpKind::CpuIFetch: {
        const VirtAddr va = slotVa(op.slot, op.frameSel);
        const SpaceVa sva(1, va);
        known[sva] = frame;
        Cpu &cpu = *cpus[st.cpu];
        cur.fp.cpuData = true;
        cur.fp.cpu = st.cpu;
        cur.fp.inst = op.kind == OpKind::CpuIFetch;
        cur.fp.colour = cur.fp.inst
                            ? machine.icache().geometry().colourOf(va)
                            : machine.dcache().geometry().colourOf(va);
        Footprint::addFrame(cur.fp.frames, frame);
        if (weakOrder()) {
            cur.fp.sbOp = true;
            cur.fp.sbCpu = st.cpu;
        }

        if (weakOrder() && op.kind == OpKind::CpuStore) {
            // Issue: the store retires into the CPU's FIFO store
            // buffer. Program order (and the oracle's shadow, which
            // defines "newest value in program order") advances now;
            // memory visibility waits for the drain step.
            const std::uint32_t value = stamp++;
            oracle.cpuStore(machine.frameAddr(frame), value);

            ThreadState drain;
            drain.name = ts.name + ".sb" +
                         std::to_string(++ts.drainsIssued);
            drain.isDrain = true;
            drain.sbCpu = st.cpu;
            drain.sbVa = va;
            drain.sbValue = value;
            drain.sbFrame = frame;
            drain.sbLine = frame_line;
            drain.sbColour = cur.fp.colour;
            drain.sbSlot = op.slot;
            drain.sbFrameSel = op.frameSel;
            cur.startedBeat = static_cast<int>(threads.size());
            sbFifo[st.cpu].push_back(cur.startedBeat);
            threads.push_back(std::move(drain));
            break;
        }

        if (weakOrder() && op.kind == OpKind::CpuLoad) {
            const int src = forwardSource(st.cpu, frame);
            if (src >= 0) {
                // Store-to-load forwarding: the CPU observes its own
                // buffered store without touching the memory system.
                const std::uint32_t observed =
                    threads[static_cast<std::size_t>(src)].sbValue;
                oracle.cpuLoad(machine.frameAddr(frame), observed);
                break;
            }
        }

        const std::uint64_t faults_before = cpu.faultCount();
        // One scenario op is one decoded operation of the CPU's
        // batched access API.
        Cpu::Op access;
        access.va = va;
        if (op.kind == OpKind::CpuLoad) {
            access.type = AccessType::Load;
        } else if (op.kind == OpKind::CpuStore) {
            access.type = AccessType::Store;
            access.value = stamp++;
        } else {
            access.type = AccessType::IFetch;
        }
        cpu.run(&access, 1);
        cur.faulted = cpu.faultCount() != faults_before;
        break;
      }

      case OpKind::PmapDmaRead:
        pmap->dmaRead(frame, /*need_data=*/true);
        cur.fp.pmapOp = true;
        Footprint::addFrame(cur.fp.frames, frame);
        for (std::uint32_t i = 0; i < page_lines; ++i)
            Footprint::addLine(cur.fp.writeLines, frame_line + i);
        break;

      case OpKind::PmapDmaWrite:
        pmap->dmaWrite(frame);
        cur.fp.pmapOp = true;
        Footprint::addFrame(cur.fp.frames, frame);
        for (std::uint32_t i = 0; i < page_lines; ++i)
            Footprint::addLine(cur.fp.writeLines, frame_line + i);
        break;

      case OpKind::PmapUnmap: {
        const SpaceVa sva(1, slotVa(op.slot, op.frameSel));
        known.erase(sva);
        pmap->remove(sva);
        cur.fp.pmapOp = true;
        Footprint::addFrame(cur.fp.frames, frame);
        for (std::uint32_t i = 0; i < page_lines; ++i)
            Footprint::addLine(cur.fp.writeLines, frame_line + i);
        break;
      }

      case OpKind::BusyAcquire:
        vic_assert(busyFrames.count(frame) == 0,
                   "busy frame acquired twice");
        busyFrames.insert(frame);
        cur.fp.busyAcquire = true;
        Footprint::addFrame(cur.fp.frames, frame);
        break;

      case OpKind::BusyRelease:
        vic_assert(busyFrames.count(frame) == 1,
                   "release of non-busy frame");
        busyFrames.erase(frame);
        cur.fp.busyRelease = true;
        Footprint::addFrame(cur.fp.frames, frame);
        break;

      case OpKind::DmaStartRead:
      case OpKind::DmaStartWrite: {
        const std::uint32_t nwords = op.lines * lineWords;
        DmaTransferId id = 0;
        if (op.kind == OpKind::DmaStartRead) {
            readBufs.emplace_back(nwords, 0u);
            // The beat thread spawned below drains this transfer;
            // the scheduler's DmaWait events gate every
            // interleaving on its completion. The lint summary
            // domain is per-call-path (bottom-up over the call
            // graph); an obligation handed to ANOTHER THREAD's
            // schedule has no call edge to follow, so this is
            // exactly the cross-thread hand-off the interprocedural
            // proof cannot see.
            // vic-lint: allow(drain-unpaired): drained cross-thread by the forked beat thread; no call edge for the summary domain to follow
            id = machine.dma().startRead(machine.frameAddr(frame),
                                         readBufs.back().data(),
                                         nwords);
        } else {
            std::vector<std::uint32_t> words(nwords);
            for (std::uint32_t i = 0; i < nwords; ++i)
                words[i] = 0x80000000u +
                           (std::uint32_t(stamp) << 8) + i;
            ++stamp;
            // Same cross-thread hand-off as the read case above.
            // vic-lint: allow(drain-unpaired): drained cross-thread by the forked beat thread; no call edge for the summary domain to follow
            id = machine.dma().startWrite(machine.frameAddr(frame),
                                          words.data(), nwords);
        }
        ts.started.push_back(id);

        ThreadState beat;
        beat.name = ts.name + ".dma" +
                    std::to_string(ts.started.size());
        beat.isBeat = true;
        beat.transfer = id;
        beat.starter = t;
        cur.startedBeat = static_cast<int>(threads.size());
        ts.startedBeatThreads.push_back(cur.startedBeat);
        threads.push_back(std::move(beat));
        Footprint::addFrame(cur.fp.frames, frame);
        break;
      }

      case OpKind::DmaWait:
        vic_assert(transfersComplete(ts), "wait on pending transfer");
        cur.joins = ts.startedBeatThreads;
        break;

      case OpKind::Fence:
        // Enabledness already guaranteed the CPU's buffer is empty;
        // the step itself is a pure ordering marker.
        vic_assert(bufferEmpty(st.cpu), "fence with non-empty buffer");
        cur.fp.sbOp = true;
        cur.fp.sbCpu = st.cpu;
        break;

      case OpKind::DmaBeat:
      case OpKind::StoreDrain:
        vic_assert(false, "dynamic-thread op in a scenario thread");
        break;
    }
    ++threads[static_cast<std::size_t>(t)].pc;
}

const StepRecord &
Executor::step(int t)
{
    ThreadState &ts = threads[static_cast<std::size_t>(t)];

    StepRecord cur;
    cur.thread = t;
    cur.pc = ts.pc;
    if (ts.isBeat) {
        cur.label = ts.name + ":beat#" + std::to_string(ts.pc);
    } else if (ts.isDrain) {
        cur.label = ts.name + ":sb-drain ";
        cur.label += static_cast<char>('A' + ts.sbSlot);
        if (ts.sbFrameSel != 0)
            cur.label += '*';
    } else {
        const Thread &st = scn.threads[static_cast<std::size_t>(
            ts.scenarioIndex)];
        const Op &op = st.ops[ts.pc];
        cur.label = ts.name + ":" + opKindName(op.kind);
        if (isCpuOp(op.kind) || op.kind == OpKind::PmapUnmap) {
            cur.label += ' ';
            cur.label += static_cast<char>('A' + op.slot);
            if (op.frameSel != 0)
                cur.label += '*';
        }
    }

    recorder->begin(&cur);
    execute(t, cur);
    recorder->end();

    hist.push_back(std::move(cur));
    return hist.back();
}

std::uint64_t
Executor::stateHash()
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };

    const std::uint32_t page_words = scn.mparams.pageBytes / 4;
    for (FrameId frame : {kFrameUnderTest, kBystanderFrame}) {
        const PhysAddr base = machine.frameAddr(frame);
        for (std::uint32_t w = 0; w < page_words; ++w)
            mix(machine.memory().readWord(
                base.plus(std::uint64_t(w) * 4)));
    }

    for (std::uint32_t c = 0; c < machine.numCpus(); ++c) {
        for (std::size_t s = 0; s < scn.slots.size(); ++s) {
            for (std::uint8_t sel = 0; sel < 2; ++sel) {
                const VirtAddr va =
                    slotVa(static_cast<std::uint8_t>(s), sel);
                const PhysAddr pa = machine.frameAddr(frameOf(sel));
                // The MESI state subsumes present/dirty (Invalid,
                // Modified) and additionally splits Shared from
                // Exclusive; off the bus only I/E/M occur, so the
                // encoding stays injective with the old valid|dirty
                // pair and uniprocessor state counts are unchanged.
                const Cache::Probe d = machine.dcache(c).probe(va, pa);
                mix(static_cast<std::uint64_t>(d.state));
                mix(d.word);
                const Cache::Probe i = machine.icache(c).probe(va, pa);
                mix(static_cast<std::uint64_t>(i.state));
                mix(i.word);
            }
        }
    }

    for (std::size_t s = 0; s < scn.slots.size(); ++s) {
        for (std::uint8_t sel = 0; sel < 2; ++sel) {
            const SpaceVa sva(
                1, slotVa(static_cast<std::uint8_t>(s), sel));
            const PageTableEntry *pte =
                machine.pageTable().lookup(sva);
            if (pte == nullptr) {
                mix(~std::uint64_t(0));
                continue;
            }
            mix(pte->frame);
            mix((pte->prot.read ? 1u : 0u) |
                (pte->prot.write ? 2u : 0u) |
                (pte->prot.execute ? 4u : 0u) |
                (pte->modified ? 8u : 0u));
        }
    }

    for (FrameId f : busyFrames)
        mix(f);
    for (const ThreadState &t : threads) {
        mix(t.pc);
        mix(t.started.size());
    }
    // Undrained store-buffer entries, FIFO order (no-op in SC mode).
    for (std::size_t c = 0; c < sbFifo.size(); ++c) {
        for (std::size_t i = sbHead[c]; i < sbFifo[c].size(); ++i) {
            const ThreadState &d =
                threads[static_cast<std::size_t>(sbFifo[c][i])];
            mix(d.sbVa.value);
            mix(d.sbValue);
            mix(d.sbFrame);
        }
    }
    DmaEngine &dma = machine.dma();
    for (std::size_t i = 0; i < dma.pendingTransfers(); ++i) {
        auto beat = dma.nextBeat(i);
        if (!beat)
            continue;
        mix(beat->pa.value);
        mix(beat->nwords);
        mix(beat->deviceWrites ? 1u : 0u);
    }
    mix(stamp);
    return h;
}

} // namespace vic::mc
