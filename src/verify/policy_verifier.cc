#include "verify/policy_verifier.hh"

#include <chrono>
#include <deque>

#include "common/logging.hh"
#include "verify/bfs_util.hh"

namespace vic::verify
{

PolicyVerifier::PolicyVerifier(VerifyOptions opts)
    : options(std::move(opts))
{
}

VerifyResult
PolicyVerifier::verify(const PolicyConfig &policy) const
{
    const auto t0 = std::chrono::steady_clock::now();

    AbstractSimulator sim(policy, options.plan);
    const std::vector<Event> alphabet = sim.alphabet();

    VerifyResult res;
    res.policyName = policy.name;

    SeenMap seen;
    std::deque<ModelState> frontier;

    const ModelState init = sim.initial();
    seen.emplace(init.pack(), Discovery{{}, {}, 0, true});
    frontier.push_back(init);
    res.numStates = 1;

    bool truncated = false;
    while (!frontier.empty()) {
        const ModelState cur = frontier.front();
        frontier.pop_front();
        const ModelState::Key cur_key = cur.pack();
        const std::uint32_t cur_depth = seen.at(cur_key).depth;

        for (const Event &e : alphabet) {
            ModelState next = cur;
            const std::optional<AbstractViolation> v =
                sim.step(next, e);
            ++res.numTransitions;

            if (v) {
                // First violation in BFS order: minimal counterexample.
                res.sound = false;
                res.fixedPointReached = true;
                res.counterexample = reconstruct(seen, cur_key, e);
                res.violation = v;
                res.diameter = std::max(res.diameter, cur_depth + 1);
                res.seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                return res;
            }

            const ModelState::Key key = next.pack();
            if (seen.find(key) != seen.end())
                continue;
            if (res.numStates >= options.maxStates) {
                truncated = true;
                continue;
            }
            seen.emplace(key,
                         Discovery{cur_key, e, cur_depth + 1, false});
            frontier.push_back(std::move(next));
            ++res.numStates;
            res.diameter = std::max(res.diameter, cur_depth + 1);
        }
    }

    res.sound = !truncated;
    res.fixedPointReached = !truncated;
    res.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return res;
}

} // namespace vic::verify
