/**
 * @file
 * Differential policy analysis: a product construction running two
 * policies against the same event stream.
 *
 * Both policies are first proven sound (an unsound policy has no
 * meaningful cost story — the result then reports the unsoundness
 * instead of a cost diff). The product machine is then explored
 * breadth-first; every product transition prices both policies' steps
 * with the CostModel, classified by the paper's Table 2 transition
 * taxonomy (target cache-page state at the event, decoded from the
 * lazy side's Table 3 bits, plus whether the access displaces a dirty
 * cache page). The per-class worst-case step costs are a static
 * reproduction of the paper's cost tables; worst cumulative costs are
 * taken along the BFS spanning tree (every minimal trace prefix).
 */

#ifndef VIC_VERIFY_DIFFERENTIAL_HH
#define VIC_VERIFY_DIFFERENTIAL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/abstract_model.hh"
#include "verify/cost_model.hh"

namespace vic::verify
{

struct DiffOptions
{
    SlotPlan plan = SlotPlan::standard();
    /** Cap on the product state space (and on each soundness check). */
    std::uint64_t maxStates = 4'000'000;
    MachineParams machine = MachineParams::hp720();
};

/** Worst-case step cost of one Table 2 transition class, per policy. */
struct DiffClassBound
{
    std::string label;  ///< e.g. "load tgt=S", "store tgt=P+disp"
    std::uint64_t transitions = 0;
    Cycles worstA = 0;
    Cycles worstB = 0;
};

struct DiffResult
{
    std::string nameA;
    std::string nameB;

    /** Both policies are sound; the cost comparison below is
     *  meaningful. */
    bool comparable = false;
    /** When !comparable: which policy is unsound and how. */
    std::string unsoundPolicy;
    Trace unsoundTrace;
    std::optional<AbstractViolation> unsoundViolation;

    bool fixedPointReached = false;
    std::uint64_t productStates = 0;
    std::uint64_t productTransitions = 0;

    /** Divergent transitions: one side pays cycles, the other none. */
    std::uint64_t aPaysBFree = 0;
    std::uint64_t bPaysAFree = 0;

    Cycles worstStepA = 0;
    Cycles worstStepB = 0;
    /** Largest single-step cost gap (costA - costB), and the minimal
     *  trace (final event included) exhibiting it. */
    Cycles worstStepGap = 0;
    Trace worstGapTrace;

    /** Worst cumulative cost along any BFS-tree (minimal-trace) path. */
    Cycles worstPathA = 0;
    Cycles worstPathB = 0;

    /** Per-Table-2-class worst-case bounds, sorted by label. */
    std::vector<DiffClassBound> classes;

    double seconds = 0.0;
};

class DifferentialAnalyzer
{
  public:
    explicit DifferentialAnalyzer(DiffOptions opts = {});

    /** Run @p a and @p b against the same event streams and bound
     *  their cost divergence. */
    DiffResult compare(const PolicyConfig &a,
                       const PolicyConfig &b) const;

  private:
    DiffOptions options;
};

} // namespace vic::verify

#endif // VIC_VERIFY_DIFFERENTIAL_HH
