/**
 * @file
 * Shared breadth-first-search bookkeeping for the verify analyzers.
 *
 * PolicyVerifier, NecessityAnalyzer and DifferentialAnalyzer all
 * explore the abstract state graph breadth-first and reconstruct
 * minimal traces from parent links; this header holds the common
 * pieces so the three agree on trace minimality.
 */

#ifndef VIC_VERIFY_BFS_UTIL_HH
#define VIC_VERIFY_BFS_UTIL_HH

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "verify/abstract_model.hh"

namespace vic::verify
{

/** BFS bookkeeping for one discovered state. */
struct Discovery
{
    ModelState::Key parent{};
    Event via;
    std::uint32_t depth = 0;
    bool isRoot = false;
};

using SeenMap =
    std::unordered_map<ModelState::Key, Discovery, ModelStateKeyHash>;

/** Walk parent links from @p last back to the root and return the
 *  minimal trace ending with @p final_event. */
inline Trace
reconstruct(const SeenMap &seen, const ModelState::Key &last,
            const Event &final_event)
{
    Trace t;
    t.push_back(final_event);
    ModelState::Key k = last;
    for (;;) {
        auto it = seen.find(k);
        vic_assert(it != seen.end(), "broken BFS parent chain");
        if (it->second.isRoot)
            break;
        t.push_back(it->second.via);
        k = it->second.parent;
    }
    std::reverse(t.begin(), t.end());
    return t;
}

} // namespace vic::verify

#endif // VIC_VERIFY_BFS_UTIL_HH
