/**
 * @file
 * Static cycle-cost model for abstract policy transitions.
 *
 * Prices the StepTrace an AbstractSimulator step records using the
 * same MachineParams the concrete simulator charges, so static bounds
 * and simulated measurements share one source of truth:
 *
 *  - a page flush/purge visits every line of the page, paying the
 *    720's present/absent cost asymmetry per line (Cache::removeLine).
 *    Under the verifier's single-word discipline at most one line of
 *    the page is present, which the IssuedOp records;
 *  - a flush of a dirty line additionally pays the write-back penalty;
 *  - the instruction cache's uniformOpCost makes every line cost the
 *    present price regardless of contents (Section 5.1);
 *  - each CPU fault pays the kernel trap cost, and each pmap
 *    consistency invocation its software bookkeeping overhead.
 */

#ifndef VIC_VERIFY_COST_MODEL_HH
#define VIC_VERIFY_COST_MODEL_HH

#include "machine/machine_params.hh"
#include "verify/abstract_model.hh"

namespace vic::verify
{

class CostModel
{
  public:
    explicit CostModel(const MachineParams &params = MachineParams::hp720());

    /** Cycles the concrete machine charges for one issued page op. */
    Cycles opCycles(const IssuedOp &op) const;

    /** Kernel entry/exit around one trapped access. */
    Cycles trapCycles() const { return mp.trapCycles; }

    /** Software bookkeeping per pmap consistency invocation. */
    Cycles pmapCycles() const { return mp.pmapOverheadCycles; }

    /** Total cycles of one traced step: ops + traps + pmap calls. */
    Cycles stepCycles(const StepTrace &t) const;

    /** Page-granularity op cost with @p line_present lines of the page
     *  present (exposed for the agreement tests). */
    Cycles dataPageOpCycles(std::uint32_t lines_present) const;
    Cycles instPageOpCycles(std::uint32_t lines_present) const;

    const MachineParams &params() const { return mp; }

  private:
    MachineParams mp;
    std::uint32_t dLinesPerPage;
    std::uint32_t iLinesPerPage;

    static Cycles pageOpCycles(const CacheCosts &costs,
                               std::uint32_t lines_per_page,
                               std::uint32_t lines_present);
};

// ---------------------------------------------------------------------
// Cost census
// ---------------------------------------------------------------------

struct CostCensusOptions
{
    SlotPlan plan = SlotPlan::standard();
    std::uint64_t maxStates = 4'000'000;
    MachineParams machine = MachineParams::hp720();
};

/** Aggregate static cost annotation of one policy's whole reachable
 *  transition graph. */
struct CostCensus
{
    std::string policyName;
    bool fixedPointReached = false;
    std::uint64_t numStates = 0;
    std::uint64_t numTransitions = 0;

    // issued op instances across all transitions
    std::uint64_t dataFlushes = 0;
    std::uint64_t dataPurges = 0;
    std::uint64_t instPurges = 0;
    std::uint64_t presentOps = 0;  ///< ops on a present line (useful)
    std::uint64_t absentOps = 0;   ///< ops on an absent line (waste)
    std::uint64_t faults = 0;      ///< trapped CPU accesses

    /** Worst single-step consistency cost, and a minimal trace ending
     *  with the event that pays it. */
    Cycles worstStepCycles = 0;
    Trace worstStepTrace;
    /** Worst cumulative cost along any BFS-tree (minimal-trace)
     *  path. */
    Cycles worstPathCycles = 0;

    double seconds = 0.0;
};

/** Explore @p policy's reachable graph and price every transition.
 *  Violations (broken policies) are ignored — the census is a cost
 *  annotation, not a soundness check. */
CostCensus runCostCensus(const PolicyConfig &policy,
                         const CostCensusOptions &opts = {});

} // namespace vic::verify

#endif // VIC_VERIFY_COST_MODEL_HH
