#include "verify/cost_model.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <unordered_map>

#include "common/logging.hh"
#include "verify/bfs_util.hh"

namespace vic::verify
{

CostModel::CostModel(const MachineParams &params)
    : mp(params),
      dLinesPerPage(params.dcacheGeometry().linesPerPage()),
      iLinesPerPage(params.icacheGeometry().linesPerPage())
{
    mp.check();
}

Cycles
CostModel::pageOpCycles(const CacheCosts &costs,
                        std::uint32_t lines_per_page,
                        std::uint32_t lines_present)
{
    vic_assert(lines_present <= lines_per_page,
               "more lines present than the page holds");
    if (costs.uniformOpCost)
        return Cycles(lines_per_page) * costs.opLinePresent;
    return Cycles(lines_present) * costs.opLinePresent +
        Cycles(lines_per_page - lines_present) * costs.opLineAbsent;
}

Cycles
CostModel::dataPageOpCycles(std::uint32_t lines_present) const
{
    return pageOpCycles(mp.dcacheCosts, dLinesPerPage, lines_present);
}

Cycles
CostModel::instPageOpCycles(std::uint32_t lines_present) const
{
    return pageOpCycles(mp.icacheCosts, iLinesPerPage, lines_present);
}

Cycles
CostModel::opCycles(const IssuedOp &op) const
{
    // Single-word discipline: at most one line of the page is present.
    const std::uint32_t present = op.present ? 1 : 0;
    Cycles c = op.cache == CacheKind::Instruction
        ? instPageOpCycles(present)
        : dataPageOpCycles(present);
    if (op.op == RequiredOp::Flush && op.dirty)
        c += mp.dcacheCosts.writeBackPenalty;
    return c;
}

Cycles
CostModel::stepCycles(const StepTrace &t) const
{
    Cycles c = Cycles(t.traps) * mp.trapCycles +
        Cycles(t.pmapCalls) * mp.pmapOverheadCycles;
    for (const IssuedOp &op : t.ops)
        c += opCycles(op);
    return c;
}

CostCensus
runCostCensus(const PolicyConfig &policy, const CostCensusOptions &opts)
{
    const auto t0 = std::chrono::steady_clock::now();

    const AbstractSimulator sim(policy, opts.plan);
    const std::vector<Event> alphabet = sim.alphabet();
    const CostModel costs(opts.machine);

    CostCensus res;
    res.policyName = policy.name;

    SeenMap seen;
    std::unordered_map<ModelState::Key, Cycles, ModelStateKeyHash> cum;
    std::deque<ModelState> frontier;

    const ModelState init = sim.initial();
    seen.emplace(init.pack(), Discovery{{}, {}, 0, true});
    cum.emplace(init.pack(), 0);
    frontier.push_back(init);
    res.numStates = 1;

    bool truncated = false;
    while (!frontier.empty()) {
        const ModelState cur = frontier.front();
        frontier.pop_front();
        const ModelState::Key cur_key = cur.pack();
        const std::uint32_t cur_depth = seen.at(cur_key).depth;
        const Cycles cur_cum = cum.at(cur_key);

        for (const Event &e : alphabet) {
            ModelState next = cur;
            StepTrace tr;
            // Violations are ignored: the census prices transitions
            // even for a broken policy.
            (void)sim.stepTraced(next, e, tr);
            ++res.numTransitions;

            res.faults += tr.traps;
            for (const IssuedOp &op : tr.ops) {
                if (op.cache == CacheKind::Instruction)
                    ++res.instPurges;
                else if (op.op == RequiredOp::Flush)
                    ++res.dataFlushes;
                else
                    ++res.dataPurges;
                (op.present ? res.presentOps : res.absentOps) += 1;
            }

            const Cycles step = costs.stepCycles(tr);
            if (step > res.worstStepCycles) {
                res.worstStepCycles = step;
                res.worstStepTrace = reconstruct(seen, cur_key, e);
            }

            const ModelState::Key key = next.pack();
            if (seen.find(key) != seen.end())
                continue;
            if (res.numStates >= opts.maxStates) {
                truncated = true;
                continue;
            }
            seen.emplace(key,
                         Discovery{cur_key, e, cur_depth + 1, false});
            cum.emplace(key, cur_cum + step);
            res.worstPathCycles =
                std::max(res.worstPathCycles, cur_cum + step);
            frontier.push_back(std::move(next));
            ++res.numStates;
        }
    }

    res.fixedPointReached = !truncated;
    res.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return res;
}

} // namespace vic::verify
