/**
 * @file
 * Exhaustive reachability analysis of the abstract protocol machine.
 *
 * For one PolicyConfig, explores every state the AbstractSimulator can
 * reach from power-up under its full event alphabet, to a fixed point
 * — no depth bound, unlike the bounded model check test. Breadth-first
 * order with a deterministic event order makes the first violation
 * found a minimal (shortest possible) counterexample trace; parent
 * links reconstruct it for replay on the concrete machine.
 */

#ifndef VIC_VERIFY_POLICY_VERIFIER_HH
#define VIC_VERIFY_POLICY_VERIFIER_HH

#include <cstdint>
#include <optional>
#include <string>

#include "verify/abstract_model.hh"

namespace vic::verify
{

struct VerifyOptions
{
    SlotPlan plan = SlotPlan::standard();
    /** Safety valve against state-space bugs; far above any real
     *  policy's reachable set. */
    std::uint64_t maxStates = 4'000'000;
};

struct VerifyResult
{
    std::string policyName;
    /** No reachable state violates the invariants. Only meaningful
     *  when @c fixedPointReached. */
    bool sound = false;
    /** The full reachable set was explored (maxStates not hit). */
    bool fixedPointReached = false;

    std::uint64_t numStates = 0;       ///< reachable states
    std::uint64_t numTransitions = 0;  ///< explored edges
    std::uint32_t diameter = 0;        ///< max BFS depth seen

    /** Shortest event sequence leading to a violation (empty when
     *  sound). */
    Trace counterexample;
    std::optional<AbstractViolation> violation;

    double seconds = 0.0;
};

class PolicyVerifier
{
  public:
    explicit PolicyVerifier(VerifyOptions opts = {});

    /** Explore @p policy's reachable states and check the paper's
     *  invariants on every transition. */
    VerifyResult verify(const PolicyConfig &policy) const;

  private:
    VerifyOptions options;
};

} // namespace vic::verify

#endif // VIC_VERIFY_POLICY_VERIFIER_HH
