#include "verify/necessity.hh"

#include <chrono>
#include <deque>
#include <map>
#include <unordered_set>

#include "common/logging.hh"
#include "verify/bfs_util.hh"

namespace vic::verify
{

NecessityAnalyzer::NecessityAnalyzer(NecessityOptions opts)
    : options(std::move(opts))
{
}

namespace
{

using KeySet =
    std::unordered_set<ModelState::Key, ModelStateKeyHash>;

enum class Verdict : std::uint8_t
{
    Necessary,
    Redundant,
    Inconclusive,
};

/**
 * Shared scratch of one analyze() run. memoSafe holds states proven
 * adversarially safe (no violation reachable); memoBad holds mutant
 * roots from which a violation was reached. Both persist across op
 * instances, so repeated mutants resolve by lookup.
 */
struct MutantSearch
{
    const AbstractSimulator &adv;
    const std::vector<Event> &alphabet;
    KeySet memoSafe;
    KeySet memoBad;
    std::uint64_t budget;
    bool exhausted = false;

    /** Is any violation (or write-back hazard) reachable from @p m
     *  under adversarial semantics? */
    Verdict explore(const ModelState &m)
    {
        const ModelState::Key root = m.pack();
        if (memoSafe.count(root))
            return Verdict::Redundant;
        if (memoBad.count(root))
            return Verdict::Necessary;

        KeySet local;
        std::deque<ModelState> frontier;
        local.insert(root);
        frontier.push_back(m);

        while (!frontier.empty()) {
            const ModelState cur = frontier.front();
            frontier.pop_front();
            for (const Event &e : alphabet) {
                ModelState next = cur;
                const std::optional<AbstractViolation> v =
                    adv.step(next, e);
                if (v || AbstractSimulator::hazard(next)) {
                    memoBad.insert(root);
                    return Verdict::Necessary;
                }
                const ModelState::Key key = next.pack();
                if (memoBad.count(key)) {
                    memoBad.insert(root);
                    return Verdict::Necessary;
                }
                if (memoSafe.count(key) || local.count(key))
                    continue;
                if (budget == 0) {
                    exhausted = true;
                    return Verdict::Inconclusive;
                }
                --budget;
                local.insert(key);
                frontier.push_back(std::move(next));
            }
        }
        // Exhausted without a violation: everything seen is safe.
        memoSafe.insert(local.begin(), local.end());
        return Verdict::Redundant;
    }
};

} // namespace

NecessityResult
NecessityAnalyzer::analyze(const PolicyConfig &policy) const
{
    const auto t0 = std::chrono::steady_clock::now();

    const AbstractSimulator sim(policy, options.plan);
    const AbstractSimulator adv(policy, options.plan,
                                /*adversarial=*/true);
    const std::vector<Event> alphabet = sim.alphabet();
    const CostModel costs(options.machine);

    NecessityResult res;
    res.policyName = policy.name;

    // --- Phase 1: exact reachability (as PolicyVerifier), keeping the
    // discovered states in BFS order for phase 2.
    SeenMap seen;
    std::vector<ModelState> order;
    bool divergence = false;  // hazard or stale store seen in base set

    const ModelState init = sim.initial();
    seen.emplace(init.pack(), Discovery{{}, {}, 0, true});
    order.push_back(init);

    bool truncated = false;
    for (std::size_t head = 0; head < order.size(); ++head) {
        const ModelState cur = order[head];
        const ModelState::Key cur_key = cur.pack();
        const std::uint32_t cur_depth = seen.at(cur_key).depth;

        for (const Event &e : alphabet) {
            ModelState next = cur;
            StepTrace tr;
            const std::optional<AbstractViolation> v =
                sim.stepTraced(next, e, tr);
            if (v) {
                res.sound = false;
                res.fixedPointReached = true;
                res.numStates = order.size();
                res.counterexample = reconstruct(seen, cur_key, e);
                res.violation = v;
                res.seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
                return res;
            }
            divergence |= tr.staleStore ||
                AbstractSimulator::hazard(next);

            const ModelState::Key key = next.pack();
            if (seen.find(key) != seen.end())
                continue;
            if (order.size() >=
                static_cast<std::size_t>(options.maxStates)) {
                truncated = true;
                continue;
            }
            seen.emplace(key,
                         Discovery{cur_key, e, cur_depth + 1, false});
            order.push_back(std::move(next));
        }
    }

    res.sound = !truncated;
    res.fixedPointReached = !truncated;
    res.numStates = order.size();
    if (truncated) {
        res.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        return res;
    }

    // --- Phase 2: the one-op-skipped mutant of every issued op.
    MutantSearch search{adv, alphabet, {}, {},
                        options.maxMutantStates};
    res.adversariallyClean = !divergence;
    if (res.adversariallyClean) {
        // Sound + adversarially clean: the whole base reachable set is
        // closed under adversarial steps and violation-free, so every
        // base state is safe. Pre-seeding makes the common mutant case
        // (skip was a hardware no-op) a single lookup.
        for (const auto &kv : seen)
            search.memoSafe.insert(kv.first);
    }

    std::map<std::string, SiteReport> sites;

    for (const ModelState &s : order) {
        const ModelState::Key s_key = s.pack();
        for (const Event &e : alphabet) {
            ModelState normal = s;
            StepTrace tr;
            sim.stepTraced(normal, e, tr);
            if (tr.ops.empty())
                continue;
            const ModelState::Key normal_key = normal.pack();

            for (std::size_t k = 0; k < tr.ops.size(); ++k) {
                const IssuedOp &op = tr.ops[k];
                ModelState mutant = s;
                const std::optional<AbstractViolation> v =
                    adv.stepSkipping(mutant, e, k);

                ++res.opsExamined;
                SiteReport &site = sites[op.site];
                if (site.site.empty())
                    site.site = op.site;
                ++site.issued;

                Verdict verdict;
                if (v || AbstractSimulator::hazard(mutant)) {
                    verdict = Verdict::Necessary;
                } else if (mutant.pack() == normal_key &&
                           res.adversariallyClean) {
                    // The op's hardware effect was a no-op; the mutant
                    // IS the (safe) normal successor.
                    verdict = Verdict::Redundant;
                } else {
                    verdict = search.explore(mutant);
                }

                switch (verdict) {
                  case Verdict::Necessary:
                    ++res.necessaryOps;
                    ++site.necessary;
                    break;
                  case Verdict::Inconclusive:
                    ++res.inconclusiveOps;
                    ++site.inconclusive;
                    break;
                  case Verdict::Redundant: {
                    ++res.redundantOps;
                    ++site.redundant;
                    const Cycles waste = costs.opCycles(op);
                    site.worstWastedCycles =
                        std::max(site.worstWastedCycles, waste);
                    if (!site.exemplar) {
                        RedundantOp r;
                        r.prefix = reconstruct(seen, s_key, e);
                        r.event = r.prefix.back();
                        r.prefix.pop_back();
                        r.opIndex = k;
                        r.op = op;
                        r.wastedCycles = waste;
                        site.exemplar = std::move(r);
                    }
                    break;
                  }
                }
            }
        }
    }

    res.complete = !search.exhausted;
    for (auto &kv : sites)
        res.sites.push_back(std::move(kv.second));

    res.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return res;
}

} // namespace vic::verify
