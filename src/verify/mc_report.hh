/**
 * @file
 * Interleave/fuzz report schema: vic-verify-report-v4.
 *
 * Builders turn mc exploration and fuzzing results into the JSON
 * shape verify_policy embeds per scenario, and a reader summarises a
 * whole report back out of JSON. v3 added over v2: a per-scenario
 * "memoryOrder" ("sc" / "weak"), the "weakWindow" race class on each
 * race pair plus a per-scenario counter, and an optional "fuzz"
 * object with coverage counters (samples, distinct traces, traces not
 * seen by the exhaustive pass). v4 adds the benign-race accounting:
 * an explicit per-scenario "reportedRaces" (non-benign pairs — the
 * number the pass/fail verdict is about) alongside the "benignRaces"
 * count, so hardware-coherent pairs are visible distinctly instead of
 * being buried inside the races array. The reader accepts v2 through
 * v4 documents: absent fields default to the values an older writer
 * would have implied, so downstream consumers can diff old and new
 * artifacts with one code path.
 */

#ifndef VIC_VERIFY_MC_REPORT_HH
#define VIC_VERIFY_MC_REPORT_HH

#include <string>
#include <vector>

#include "common/json_writer.hh"
#include "mc/explorer.hh"

namespace vic::verify
{

/** Schema tag verify_policy writes. */
inline constexpr const char *kVerifyReportSchemaV4 =
    "vic-verify-report-v4";
/** Previous schema tags, still accepted by the reader. */
inline constexpr const char *kVerifyReportSchemaV3 =
    "vic-verify-report-v3";
inline constexpr const char *kVerifyReportSchemaV2 =
    "vic-verify-report-v2";

/** One race pair as a v3 JSON object. */
JsonValue raceJson(const mc::RaceReport &race);

/** One explored scenario as a v3 JSON object (the per-scenario entry
 *  of the "interleave.scenarios" array). */
JsonValue scenarioResultJson(const mc::ScenarioResult &result,
                             bool passed);

/** One fuzzing pass as a v3 JSON object (the scenario's "fuzz"
 *  member). */
JsonValue fuzzResultJson(const mc::FuzzResult &result, bool passed);

// --- reader ------------------------------------------------------------

/** Summary of one scenario entry read back from a report. */
struct McScenarioSummary
{
    std::string scenario;
    std::string memoryOrder = "sc"; ///< v2 documents imply SC
    bool exhausted = false;
    std::uint64_t executions = 0;
    std::uint64_t canonicalTraces = 0;
    std::uint64_t violatingRuns = 0;
    std::uint64_t weakWindowRaces = 0; ///< 0 in v2 documents
    std::size_t races = 0;             ///< all pairs, benign included
    std::uint64_t benignRaces = 0;
    std::uint64_t confirmedRaces = 0;
    /** Non-benign pairs. Pre-v4 documents lack the explicit field;
     *  the reader falls back to races - benignRaces. */
    std::uint64_t reportedRaces = 0;
    bool passed = false;

    bool hasFuzz = false; ///< a "fuzz" member was present (v3 only)
    std::uint64_t fuzzSamples = 0;
    std::uint64_t fuzzTraces = 0;
    std::uint64_t fuzzNewTraces = 0;
    bool fuzzPassed = false;
};

/** Summary of a whole verify report's interleave sections. */
struct McReportSummary
{
    std::string schema;
    bool recognised = false; ///< schema is v2, v3 or v4
    bool ok = false;         ///< the report's top-level verdict
    std::vector<McScenarioSummary> scenarios; ///< across all policies
};

/** Read a v2/v3/v4 verify report (parsed JSON document). Unknown
 *  schemas yield recognised=false with whatever fields still parse. */
McReportSummary readMcReport(const JsonValue &report);

} // namespace vic::verify

#endif // VIC_VERIFY_MC_REPORT_HH
