#include "verify/trace_replay.hh"

#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "core/pmap.hh"
#include "dma/dma_engine.hh"
#include "machine/cpu.hh"
#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"

namespace vic::verify
{

TraceReplayer::TraceReplayer(const PolicyConfig &policy, SlotPlan plan,
                             MachineParams params)
    : cfg(policy), slotPlan(std::move(plan)), mparams(params)
{
}

ReplayResult
TraceReplayer::replay(const Trace &trace) const
{
    // Drive the pmap + CPU directly (no Kernel layer) so the machine
    // starts in the abstract model's initial state: nothing mapped,
    // nothing cached, and no background page-preparation traffic.
    Machine machine(mparams);
    std::unique_ptr<Pmap> pmap = Pmap::create(machine, cfg);
    Cpu cpu(machine);
    cpu.setSpace(1);

    ConsistencyOracle oracle(mparams.numFrames * mparams.pageBytes);
    machine.setObserver(&oracle);

    std::unordered_map<SpaceVa, FrameId> known;
    cpu.setFaultHandler([&](const Fault &f) {
        if (pmap->resolveConsistencyFault(f.address, f.access))
            return true;
        // The OS re-enters broken/unmapped translations on demand with
        // the faulting access type and default hints, exactly as
        // Kernel::resolveMappingFault does.
        auto it = known.find(f.address);
        if (f.type == FaultType::Unmapped && it != known.end()) {
            pmap->enter(f.address, it->second, Protection::all(),
                        f.access, {});
            return true;
        }
        return false;
    });

    ReplayResult res;
    int current_event = -1;
    oracle.setViolationHook(
        [&](const ConsistencyOracle::Violation &v) {
            if (res.firstViolationEvent < 0) {
                res.firstViolationEvent = current_event;
                res.kind = v.kind;
            }
        });

    // The physical page under analysis.
    const FrameId frame = 7;
    vic_assert(frame < mparams.numFrames, "frame out of range");

    const std::uint32_t machine_colours =
        machine.dcache().geometry().numColours();
    vic_assert(slotPlan.dColours + 1 <= machine_colours,
               "slot plan needs more colours than the machine has");

    // Virtual address of a slot: fold the abstract colour (offset by
    // one so address zero stays unused) and the replica/generation
    // into the page index. Same-colour replicas land on the same cache
    // page through different virtual pages — aligned aliases.
    std::vector<bool> gen(slotPlan.slots.size(), false);
    auto slotVa = [&](std::uint8_t slot) {
        const SlotPlan::Slot &sl = slotPlan.slots[slot];
        const std::uint64_t replica =
            sl.replica + (gen[slot] ? 2u : 0u);
        return VirtAddr((replica * machine_colours + 1 + sl.dColour) *
                        machine.pageBytes());
    };

    std::uint32_t stamp = 1;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        current_event = static_cast<int>(i);
        const Event &e = trace[i];
        const SpaceVa sva(1, slotVa(e.slot));

        switch (e.kind) {
          case EventKind::Load:
            known[sva] = frame;
            cpu.load(sva.va);
            break;
          case EventKind::Store:
            known[sva] = frame;
            cpu.store(sva.va, stamp++);
            break;
          case EventKind::IFetch:
            known[sva] = frame;
            cpu.ifetch(sva.va);
            break;

          case EventKind::Unmap:
          case EventKind::UnmapMove:
            known.erase(sva);
            pmap->remove(sva);
            if (e.kind == EventKind::UnmapMove)
                gen[e.slot] = !gen[e.slot];
            break;

          case EventKind::DmaIn: {
            pmap->dmaWrite(frame);
            const std::uint32_t w = 0x80000000u + stamp++;
            machine.dma().deviceWrite(machine.frameAddr(frame), &w, 1);
            break;
          }
          case EventKind::DmaOut: {
            pmap->dmaRead(frame, /*need_data=*/true);
            std::uint32_t w = 0;
            machine.dma().deviceRead(machine.frameAddr(frame), &w, 1);
            break;
          }
        }
    }

    res.violated = oracle.violationCount() > 0;
    res.violationCount = oracle.violationCount();

    machine.setObserver(nullptr);
    return res;
}

} // namespace vic::verify
