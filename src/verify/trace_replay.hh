/**
 * @file
 * Abstract-to-concrete counterexample replay.
 *
 * Drives a fresh simulated Machine + pmap + CPU with the
 * ConsistencyOracle attached, executing an abstract event trace
 * word-for-word: each alias slot becomes a real virtual page of the
 * matching cache colours, each store writes a unique stamp to the
 * page's word 0, DMA transfers move one word. Because the abstract
 * model's single-word discipline makes it an exact account of the
 * concrete machine's word-0 behaviour, a trace the verifier flags must
 * reproduce an oracle violation here at the same event index — and a
 * trace through a sound policy must replay clean. This closes the
 * abstraction-soundness loop: the verifier's counterexamples are real
 * bugs, not artifacts of the abstraction.
 *
 * Events here are sequential and each DMA transfer completes
 * atomically inline. The schedule-aware counterpart is
 * mc::Executor (src/mc/executor.hh): it replays *interleaved*
 * schedules — CPU accesses, pmap ops, busy-bit transitions and
 * individual DMA beats as separate atomic steps — under the same
 * oracle, which is how the model checker's minimal counterexample
 * schedules are validated.
 */

#ifndef VIC_VERIFY_TRACE_REPLAY_HH
#define VIC_VERIFY_TRACE_REPLAY_HH

#include <cstdint>
#include <string>

#include "core/policy_config.hh"
#include "machine/machine_params.hh"
#include "verify/abstract_model.hh"

namespace vic::verify
{

struct ReplayResult
{
    bool violated = false;
    std::uint64_t violationCount = 0;
    /** Index into the trace of the event whose transfer first
     *  mismatched the oracle's shadow copy; -1 if none. */
    int firstViolationEvent = -1;
    /** Oracle classification of the first violation ("cpu-load",
     *  "cpu-ifetch" or "dma-read"). */
    std::string kind;
};

class TraceReplayer
{
  public:
    explicit TraceReplayer(const PolicyConfig &policy,
                           SlotPlan plan = SlotPlan::standard(),
                           MachineParams params = MachineParams::hp720());

    /** Execute @p trace on a fresh machine under the oracle. */
    ReplayResult replay(const Trace &trace) const;

  private:
    PolicyConfig cfg;
    SlotPlan slotPlan;
    MachineParams mparams;
};

} // namespace vic::verify

#endif // VIC_VERIFY_TRACE_REPLAY_HH
