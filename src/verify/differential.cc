#include "verify/differential.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <deque>
#include <map>
#include <unordered_map>

#include "common/logging.hh"
#include "verify/policy_verifier.hh"

namespace vic::verify
{

DifferentialAnalyzer::DifferentialAnalyzer(DiffOptions opts)
    : options(std::move(opts))
{
}

namespace
{

using PairKey = std::array<std::uint64_t, 4>;

struct PairKeyHash
{
    std::size_t operator()(const PairKey &k) const
    {
        std::uint64_t h = 0;
        for (std::uint64_t v : k) {
            h += v * 0x9e3779b97f4a7c15ull;
            h ^= h >> 32;
            h *= 0xbf58476d1ce4e5b9ull;
        }
        return static_cast<std::size_t>(h);
    }
};

PairKey
pairKey(const ModelState &a, const ModelState &b)
{
    const ModelState::Key ka = a.pack();
    const ModelState::Key kb = b.pack();
    return {ka[0], ka[1], kb[0], kb[1]};
}

struct PairDiscovery
{
    PairKey parent{};
    Event via;
    bool isRoot = false;
    Cycles cumA = 0;
    Cycles cumB = 0;
};

using PairSeen =
    std::unordered_map<PairKey, PairDiscovery, PairKeyHash>;

Trace
reconstructPair(const PairSeen &seen, const PairKey &last,
                const Event &final_event)
{
    Trace t;
    t.push_back(final_event);
    PairKey k = last;
    for (;;) {
        auto it = seen.find(k);
        vic_assert(it != seen.end(), "broken product parent chain");
        if (it->second.isRoot)
            break;
        t.push_back(it->second.via);
        k = it->second.parent;
    }
    std::reverse(t.begin(), t.end());
    return t;
}

/** Decode the lazy side's Table 3 bits into the Table 2 state letter
 *  of the event's target cache page, with a "+disp" marker when the
 *  access additionally displaces a dirty data cache page. */
std::string
classifyEvent(const Event &e, const ModelState *ls,
              const SlotPlan &plan)
{
    std::string label = eventKindName(e.kind);
    if (!ls)
        return label;

    const auto bit = [](std::uint8_t mask, CachePageId c) {
        return (mask & (1u << c)) != 0;
    };
    // While the cache is dirty exactly one data colour is mapped — the
    // dirty one (lazy invariant). Under the modified-bit optimisation
    // the dirty bit lags the hardware: a silently-modified live slot
    // makes its colour effectively dirty before the next pmap run
    // syncs the bookkeeping, and the step will pay the displacement
    // flush accordingly — so classify by the effective view.
    int dirty_col = ls->dCacheDirty
        ? std::countr_zero(static_cast<unsigned>(ls->dMapped))
        : -1;
    if (dirty_col < 0) {
        for (std::uint8_t k = 0; k < kMaxSlots; ++k)
            if (ls->live[k] && ls->modbit[k]) {
                dirty_col = plan.slots[k].dColour;
                break;
            }
    }
    const bool eff_dirty = dirty_col >= 0;

    switch (e.kind) {
      case EventKind::Load:
      case EventKind::Store: {
        const CachePageId c = plan.slots[e.slot].dColour;
        char letter = 'E';
        if (bit(ls->dStale, c))
            letter = 'S';
        else if (eff_dirty && dirty_col == static_cast<int>(c))
            letter = 'D';
        else if (bit(ls->dMapped, c))
            letter = 'P';
        label += " tgt=";
        label += letter;
        if (eff_dirty && dirty_col != static_cast<int>(c))
            label += "+disp";
        return label;
      }
      case EventKind::IFetch: {
        const CachePageId c = plan.slots[e.slot].iColour;
        char letter = 'E';
        if (bit(ls->iStale, c))
            letter = 'S';
        else if (bit(ls->iMapped, c))
            letter = 'P';
        label += " tgt=";
        label += letter;
        // Instruction fetches never align with data: any dirty data
        // cache page is displaced.
        if (eff_dirty)
            label += "+disp";
        return label;
      }
      case EventKind::Unmap:
      case EventKind::UnmapMove:
        return label;
      case EventKind::DmaIn:
      case EventKind::DmaOut:
        label += eff_dirty ? " dirty" : " clean";
        return label;
    }
    return label;
}

} // namespace

DiffResult
DifferentialAnalyzer::compare(const PolicyConfig &a,
                              const PolicyConfig &b) const
{
    const auto t0 = std::chrono::steady_clock::now();

    DiffResult res;
    res.nameA = a.name;
    res.nameB = b.name;

    // --- Soundness gate: an unsound policy has no cost story.
    const PolicyVerifier verifier(
        VerifyOptions{options.plan, options.maxStates});
    for (const PolicyConfig *p : {&a, &b}) {
        const VerifyResult vr = verifier.verify(*p);
        if (!vr.sound) {
            res.comparable = false;
            res.unsoundPolicy = p->name;
            res.unsoundTrace = vr.counterexample;
            res.unsoundViolation = vr.violation;
            res.seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
            return res;
        }
    }
    res.comparable = true;

    const AbstractSimulator simA(a, options.plan);
    const AbstractSimulator simB(b, options.plan);
    const CostModel costs(options.machine);

    // Union alphabet: a per-VA policy adds UnmapMove, which every
    // other policy treats exactly as Unmap.
    std::vector<Event> alphabet = simA.alphabet();
    for (const Event &e : simB.alphabet())
        if (std::find(alphabet.begin(), alphabet.end(), e) ==
            alphabet.end())
            alphabet.push_back(e);

    // Classify transitions through the lazy side's Table 3 bits
    // (prefer B, conventionally the lazy/new policy).
    const bool b_lazy = b.pmapKind == PmapKind::Lazy;
    const bool a_lazy = a.pmapKind == PmapKind::Lazy;

    PairSeen seen;
    std::deque<std::pair<ModelState, ModelState>> frontier;

    const std::pair<ModelState, ModelState> init{simA.initial(),
                                                 simB.initial()};
    seen.emplace(pairKey(init.first, init.second),
                 PairDiscovery{{}, {}, true, 0, 0});
    frontier.push_back(init);
    res.productStates = 1;

    std::map<std::string, DiffClassBound> classes;
    bool truncated = false;

    while (!frontier.empty()) {
        const auto [curA, curB] = frontier.front();
        frontier.pop_front();
        const PairKey cur_key = pairKey(curA, curB);
        const PairDiscovery cur_disc = seen.at(cur_key);

        for (const Event &e : alphabet) {
            const ModelState *lazy_side =
                b_lazy ? &curB : (a_lazy ? &curA : nullptr);
            const std::string label =
                classifyEvent(e, lazy_side, options.plan);

            ModelState nextA = curA;
            ModelState nextB = curB;
            StepTrace trA, trB;
            const auto vA = simA.stepTraced(nextA, e, trA);
            const auto vB = simB.stepTraced(nextB, e, trB);
            vic_assert(!vA && !vB,
                       "sound policy violated inside the product");
            ++res.productTransitions;

            const Cycles costA = costs.stepCycles(trA);
            const Cycles costB = costs.stepCycles(trB);

            DiffClassBound &cls = classes[label];
            if (cls.label.empty())
                cls.label = label;
            ++cls.transitions;
            cls.worstA = std::max(cls.worstA, costA);
            cls.worstB = std::max(cls.worstB, costB);

            res.worstStepA = std::max(res.worstStepA, costA);
            res.worstStepB = std::max(res.worstStepB, costB);
            if (costA > 0 && costB == 0)
                ++res.aPaysBFree;
            if (costB > 0 && costA == 0)
                ++res.bPaysAFree;
            if (costA > costB &&
                costA - costB > res.worstStepGap) {
                res.worstStepGap = costA - costB;
                res.worstGapTrace =
                    reconstructPair(seen, cur_key, e);
            }

            const PairKey key = pairKey(nextA, nextB);
            if (seen.find(key) != seen.end())
                continue;
            if (res.productStates >= options.maxStates) {
                truncated = true;
                continue;
            }
            const Cycles cumA = cur_disc.cumA + costA;
            const Cycles cumB = cur_disc.cumB + costB;
            res.worstPathA = std::max(res.worstPathA, cumA);
            res.worstPathB = std::max(res.worstPathB, cumB);
            seen.emplace(key, PairDiscovery{cur_key, e, false, cumA,
                                            cumB});
            frontier.emplace_back(std::move(nextA), std::move(nextB));
            ++res.productStates;
        }
    }

    res.fixedPointReached = !truncated;
    for (auto &kv : classes)
        res.classes.push_back(std::move(kv.second));

    res.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return res;
}

} // namespace vic::verify
