/**
 * @file
 * Abstract product machine for the static protocol verifier.
 *
 * Models ONE physical page of a virtually indexed, physically tagged,
 * write-back machine as the product of three components:
 *
 *  1. the ground truth — a "freshness" lattice recording which copy of
 *     the page's representative word currently holds the newest value:
 *     memory, a data-cache page, or an instruction-cache page. The
 *     paper's invariants are properties of this component alone: no
 *     stale read (a CPU load/ifetch must hit a fresh copy), no
 *     shadowed DMA (a device read must see fresh memory), no lost
 *     dirty write-back (destroying the only fresh copy is detected the
 *     moment anything observes the survivor);
 *  2. the policy's own bookkeeping — the Table 3 mapped/stale/dirty
 *     vectors for the lazy strategy, or mapping/residue/exec-mode
 *     metadata for the classic ones. The lazy component is driven
 *     through LazyPmap::planCacheControl / cacheStateProt, i.e. the
 *     same code the simulator runs, so the model cannot drift;
 *  3. the mapping layer — which virtual alias slots are live, their
 *     hardware protections and page-table modified bits.
 *
 * The event alphabet covers the paper's whole consistency problem:
 * loads, stores and instruction fetches through aligned and unaligned
 * alias slots, DMA in both directions, unmap, and (for the per-VA Tut
 * policy) remap at a fresh virtual address. Mapping is implicit — an
 * access through a dead slot takes the kernel's demand-mapping path,
 * entering the translation with default hints, exactly as
 * Kernel::resolveMappingFault does.
 *
 * The model follows a single-word discipline: all CPU and DMA traffic
 * touches the page's word 0 only. That makes the page-granularity
 * abstraction exact, so every abstract trace is realisable by a
 * concrete replay (TraceReplayer) and every abstract violation
 * corresponds to a ConsistencyOracle violation at the same event.
 */

#ifndef VIC_VERIFY_ABSTRACT_MODEL_HH
#define VIC_VERIFY_ABSTRACT_MODEL_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/cache_page_state.hh"
#include "core/policy_config.hh"
#include "mmu/fault.hh"

namespace vic::verify
{

// ---------------------------------------------------------------------
// Events and traces
// ---------------------------------------------------------------------

enum class EventKind : std::uint8_t
{
    Load,       ///< CPU word load through a slot (maps on demand)
    Store,      ///< CPU word store through a slot (maps on demand)
    IFetch,     ///< CPU instruction fetch through a slot
    Unmap,      ///< pmap remove of a slot's translation
    UnmapMove,  ///< unmap, then move the slot to a fresh (still
                ///< aligned) virtual address — distinguishes per-VA
                ///< residue tracking (Tut) from per-colour tracking
    DmaIn,      ///< device writes memory (e.g. disk read completing)
    DmaOut,     ///< device reads memory (e.g. disk write issued)
};

const char *eventKindName(EventKind k);

/** One step of an abstract execution. @c slot selects the alias slot
 *  for CPU/unmap events and is ignored for DMA. */
struct Event
{
    EventKind kind = EventKind::Load;
    std::uint8_t slot = 0;

    bool operator==(const Event &) const = default;
};

/** "store@B"-style display name. */
std::string eventName(const Event &e);

using Trace = std::vector<Event>;

/** "store@A -> load@B" display form. */
std::string traceName(const Trace &t);

// ---------------------------------------------------------------------
// Alias slot plan
// ---------------------------------------------------------------------

/**
 * The fixed set of virtual alias slots the model (and the concrete
 * replay) uses. Slots are virtual pages mapping the single physical
 * page under analysis; two slots with equal colours are aligned
 * aliases, distinct colours are unaligned aliases.
 */
struct SlotPlan
{
    struct Slot
    {
        CachePageId dColour = 0;
        CachePageId iColour = 0;
        /** Distinguishes same-colour slots; the replayer folds it into
         *  the virtual address. */
        std::uint8_t replica = 0;
    };

    std::vector<Slot> slots;
    /** Number of distinct data / instruction colours the plan uses
     *  (the abstract caches are only this wide). */
    std::uint32_t dColours = 2;
    std::uint32_t iColours = 2;

    /**
     * The default plan: slot A (colour 0), slot B (colour 1, an
     * unaligned alias of A), slot C (colour 0 again — an aligned alias
     * of A at a different virtual address). This covers every
     * qualitative alias relation the paper discusses.
     */
    static SlotPlan standard();
};

// ---------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------

enum class ViolationKind : std::uint8_t
{
    StaleLoad,    ///< CPU load observed a non-newest value
    StaleIFetch,  ///< instruction fetch observed a non-newest value
    StaleDmaOut,  ///< device read while memory was not current
};

const char *violationKindName(ViolationKind k);

struct AbstractViolation
{
    ViolationKind kind = ViolationKind::StaleLoad;
    std::uint8_t slot = 0;  ///< slot of the observing event (CPU only)
    std::string detail;     ///< failure-mode classification
};

// ---------------------------------------------------------------------
// Issued-op instrumentation (cost model / necessity analysis)
// ---------------------------------------------------------------------

/**
 * One hardware cache operation a policy issued while executing a step.
 * @c present / @c dirty describe the abstract line at issue time, which
 * under the single-word discipline decides the concrete machine's
 * present/absent cost asymmetry and whether a flush pays a write-back.
 */
struct IssuedOp
{
    CacheKind cache = CacheKind::Data;
    RequiredOp op = RequiredOp::Purge;
    CachePageId colour = 0;
    bool present = false;
    bool dirty = false;
    /** Stable label of the policy call site that issued the op (finer
     *  than the simulator's stats `reason` strings; see
     *  docs/VERIFICATION.md for the mapping to shipping code). */
    const char *site = "?";

    /** "flush d0 (present,dirty) @lazy.dma-out"-style display name. */
    std::string name() const;
};

/** Everything one step cost: cache ops issued, faults taken, and pmap
 *  consistency invocations. CostModel turns this into cycles. */
struct StepTrace
{
    std::vector<IssuedOp> ops;
    std::uint32_t traps = 0;      ///< CPU faults (kernel entry/exit)
    std::uint32_t pmapCalls = 0;  ///< pmap consistency invocations
    /** A store was performed into a present non-newest line. Never
     *  happens under a sound policy; tracked because the adversarial
     *  step semantics diverge exactly here (see stepSkipping). */
    bool staleStore = false;
};

// ---------------------------------------------------------------------
// Model state
// ---------------------------------------------------------------------

/** Compile-time bounds; SlotPlan sizes must fit. */
constexpr std::uint32_t kMaxColours = 4;
constexpr std::uint32_t kMaxSlots = 4;

/**
 * One abstract state: ground truth + mapping layer + policy
 * bookkeeping. Fields used only by one pmap strategy are kept zeroed
 * under the other so equal behaviours collapse to equal states.
 */
struct ModelState
{
    // --- ground truth (freshness lattice) ---
    struct DLine
    {
        bool present = false;  ///< d-cache holds a copy at this colour
        bool fresh = false;    ///< ... and it is the newest value
        bool dirty = false;    ///< ... and it differs from memory
        bool operator==(const DLine &) const = default;
    };
    struct ILine
    {
        bool present = false;
        bool fresh = false;
        bool operator==(const ILine &) const = default;
    };
    bool memFresh = true;  ///< memory holds the newest value
    std::array<DLine, kMaxColours> dline{};
    std::array<ILine, kMaxColours> iline{};

    // --- mapping layer ---
    std::array<bool, kMaxSlots> live{};    ///< translation exists
    std::array<bool, kMaxSlots> modbit{};  ///< page-table modified bit
    std::array<bool, kMaxSlots> vaGen{};   ///< which VA the slot uses
                                           ///< (flipped by UnmapMove)
    std::array<bool, kMaxSlots> hwWrite{}; ///< hardware prot (classic)
    std::array<bool, kMaxSlots> hwExec{};
    /** Slots in mapping-list order (classic semantics depend on
     *  iteration order and swap-removal). */
    std::array<std::uint8_t, kMaxSlots> order{};
    std::uint8_t numLive = 0;
    /** Frame has been entered at least once (pmap has bookkeeping). */
    bool everTouched = false;

    // --- lazy bookkeeping (Table 3), one bit per colour ---
    std::uint8_t dMapped = 0;
    std::uint8_t dStale = 0;
    std::uint8_t iMapped = 0;
    std::uint8_t iStale = 0;
    bool dCacheDirty = false;

    // --- classic bookkeeping ---
    bool execMode = false;
    bool hasResidue = false;
    std::uint8_t residueSlot = 0;
    bool residueGen = false;
    bool residueDirty = false;
    bool residueExec = false;

    bool operator==(const ModelState &) const = default;

    /** Canonical 128-bit packing (hash/dedup key). */
    using Key = std::array<std::uint64_t, 2>;
    Key pack() const;
};

struct ModelStateKeyHash
{
    std::size_t operator()(const ModelState::Key &k) const
    {
        // splitmix-style combine
        std::uint64_t h = k[0] * 0x9e3779b97f4a7c15ull;
        h ^= h >> 32;
        h += k[1] * 0xbf58476d1ce4e5b9ull;
        h ^= h >> 29;
        return static_cast<std::size_t>(h);
    }
};

// ---------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------

/**
 * Executes abstract events against a ModelState for one PolicyConfig.
 * Deterministic and side-effect free apart from the passed state, so a
 * reachability search can use it directly. The traced/skipping entry
 * points use internal scratch members, so one simulator instance must
 * not be stepped from two threads at once.
 *
 * @param adversarial Harden the step semantics for necessity analysis
 *   (the one-op-skipped mutant exploration). Two refinements model
 *   hardware behaviour the exact single-word abstraction cannot see,
 *   both of which only ADD failure paths:
 *    - a store into a present non-newest line leaves the line dirty
 *      but still non-newest (the line's other words stay stale in the
 *      multi-word machine), instead of making it fresh;
 *    - callers must additionally treat any state holding a dirty
 *      non-newest data line as violating (hazard()): under cache
 *      pressure the hardware may write such a line back at any time,
 *      clobbering the newest memory copy.
 *   Exact reachability (PolicyVerifier, TraceReplayer equivalence)
 *   must use the default non-adversarial semantics.
 */
class AbstractSimulator
{
  public:
    explicit AbstractSimulator(const PolicyConfig &policy,
                               SlotPlan plan = SlotPlan::standard(),
                               bool adversarial = false);

    const PolicyConfig &policy() const { return cfg; }
    const SlotPlan &plan() const { return slotPlan; }

    /** The event alphabet for this policy. UnmapMove is included only
     *  when the policy can distinguish it from Unmap (per-VA residue
     *  tracking). */
    std::vector<Event> alphabet() const;

    /** Power-up state: nothing mapped, nothing cached, memory fresh. */
    ModelState initial() const;

    /**
     * Apply @p e to @p s in place. Returns the violation if the event
     * observed stale data (the state is still advanced past it, like
     * the concrete machine, which reads the wrong value and carries
     * on).
     */
    std::optional<AbstractViolation> step(ModelState &s,
                                          const Event &e) const;

    /** step() while recording every issued cache op, fault and pmap
     *  invocation into @p out (overwritten). */
    std::optional<AbstractViolation> stepTraced(ModelState &s,
                                                const Event &e,
                                                StepTrace &out) const;

    /**
     * step() with the @p skip-th issued cache op suppressed: the
     * policy's bookkeeping advances as if the op ran, but its hardware
     * effect on the caches does not happen — the one-op-skipped mutant
     * of the necessity analysis. Indices follow stepTraced() op order.
     */
    std::optional<AbstractViolation> stepSkipping(ModelState &s,
                                                  const Event &e,
                                                  std::size_t skip) const;

    /**
     * A dirty non-newest data line is present: under cache pressure
     * the hardware may write it back at any time, destroying the
     * newest memory copy. Adversarial (necessity) exploration treats
     * this as a violation; sound policies never reach such a state
     * (asserted by the analyzers).
     */
    static bool hazard(const ModelState &s);

  private:
    PolicyConfig cfg;
    SlotPlan slotPlan;
    bool lazy;
    bool advMode;

    // --- per-step instrumentation scratch (single-threaded use) ---
    mutable StepTrace *rec = nullptr;    ///< recording target, if any
    mutable long skipAt = -1;            ///< op index to suppress
    mutable long opCursor = 0;           ///< ops issued so far this step
    mutable const char *curSite = "?";   ///< active call-site label
    struct SiteScope;

    /** Record the op and decide whether its hardware effect applies
     *  (false only for the skipAt-th op of the step). */
    bool issueOp(CacheKind cache, RequiredOp op, CachePageId colour,
                 bool present, bool dirty) const;

    CachePageId dcol(std::uint8_t slot) const
    { return slotPlan.slots[slot].dColour; }
    CachePageId icol(std::uint8_t slot) const
    { return slotPlan.slots[slot].iColour; }
    bool conflicts(std::uint8_t a, std::uint8_t b) const;

    // ground-truth transfers
    void gtFlushData(ModelState &s, CachePageId c) const;
    void gtPurgeData(ModelState &s, CachePageId c) const;
    void gtPurgeInst(ModelState &s, CachePageId c) const;
    std::optional<AbstractViolation>
    gtCpuAccess(ModelState &s, std::uint8_t slot, AccessType t) const;
    std::string classify(const ModelState &s, bool ifetch) const;

    // the trap-and-retry CPU path
    std::optional<AbstractViolation>
    cpuAccess(ModelState &s, std::uint8_t slot, AccessType t) const;
    bool accessPermitted(const ModelState &s, std::uint8_t slot,
                         AccessType t) const;

    // mapping-order helpers
    void addOrdered(ModelState &s, std::uint8_t slot) const;
    void removeOrdered(ModelState &s, std::uint8_t slot) const;
    void normalize(ModelState &s) const;

    // lazy policy (via LazyPmap's extracted pure logic)
    void lazySync(ModelState &s) const;
    void lazyCacheControl(ModelState &s, MemOp op,
                          std::optional<std::uint8_t> slot,
                          AccessType access, bool will_overwrite,
                          bool need_data) const;
    void lazyEnter(ModelState &s, std::uint8_t slot,
                   AccessType t) const;
    void lazyUnmap(ModelState &s, std::uint8_t slot) const;

    // classic policy (mirrors ClassicPmap)
    bool classicColourPossiblyDirty(const ModelState &s, CachePageId c,
                                    bool base_modified) const;
    void classicCleanResidue(ModelState &s,
                             bool base_modified = false) const;
    void classicCleanThrough(ModelState &s, std::uint8_t slot,
                             bool flush_dirty, bool had_exec) const;
    void classicEnterExecMode(ModelState &s, CachePageId icolour) const;
    void classicEnterWriteMode(ModelState &s) const;
    void classicBreakMapping(ModelState &s, std::uint8_t slot) const;
    void classicEnter(ModelState &s, std::uint8_t slot,
                      AccessType t) const;
    void classicUnmap(ModelState &s, std::uint8_t slot) const;
    bool classicResolveFault(ModelState &s, std::uint8_t slot,
                             AccessType t) const;
    void classicDmaRead(ModelState &s) const;
    void classicDmaWrite(ModelState &s) const;
};

} // namespace vic::verify

#endif // VIC_VERIFY_ABSTRACT_MODEL_HH
