#include "verify/mc_report.hh"

namespace vic::verify
{

JsonValue
raceJson(const mc::RaceReport &race)
{
    JsonValue j = JsonValue::object();
    j.set("a", JsonValue::str(race.labelA));
    j.set("b", JsonValue::str(race.labelB));
    j.set("line", JsonValue::number(race.line));
    j.set("benign", JsonValue::boolean(race.benign));
    j.set("weakWindow", JsonValue::boolean(race.weakWindow));
    return j;
}

namespace
{

JsonValue
labelsJson(const std::vector<std::string> &labels)
{
    JsonValue a = JsonValue::array();
    for (const std::string &l : labels)
        a.push(JsonValue::str(l));
    return a;
}

JsonValue
racesJson(const std::vector<mc::RaceReport> &races)
{
    JsonValue a = JsonValue::array();
    for (const mc::RaceReport &r : races)
        a.push(raceJson(r));
    return a;
}

} // namespace

JsonValue
scenarioResultJson(const mc::ScenarioResult &r, bool passed)
{
    JsonValue js = JsonValue::object();
    js.set("scenario", JsonValue::str(r.scenario));
    js.set("memoryOrder",
           JsonValue::str(mc::memoryOrderName(r.memoryOrder)));
    js.set("exhausted", JsonValue::boolean(r.exhausted));
    js.set("deadlock", JsonValue::boolean(r.deadlock));
    js.set("executions", JsonValue::number(r.executions));
    js.set("canonicalTraces", JsonValue::number(r.canonicalTraces));
    js.set("distinctEndStates",
           JsonValue::number(r.distinctEndStates));
    js.set("maxDepth", JsonValue::number(r.maxDepth));
    js.set("steps", JsonValue::number(r.steps));
    js.set("sleepPruned", JsonValue::number(r.sleepPruned));
    js.set("persistentPruned", JsonValue::number(r.persistentPruned));
    js.set("races", racesJson(r.races));
    js.set("benignRaces", JsonValue::number(r.benignRaces));
    js.set("reportedRaces", JsonValue::number(r.reportedRaces()));
    js.set("confirmedRaces", JsonValue::number(r.confirmedRaces));
    js.set("weakWindowRaces", JsonValue::number(r.weakWindowRaces));
    js.set("violatingRuns", JsonValue::number(r.violatingRuns));
    if (!r.minimalCounterexampleLabels.empty()) {
        js.set("minimalCounterexample",
               labelsJson(r.minimalCounterexampleLabels));
        js.set("replayConfirmed",
               JsonValue::boolean(r.replayConfirmed));
    }
    js.set("passed", JsonValue::boolean(passed));
    return js;
}

JsonValue
fuzzResultJson(const mc::FuzzResult &r, bool passed)
{
    JsonValue js = JsonValue::object();
    js.set("samples", JsonValue::number(r.samples));
    js.set("steps", JsonValue::number(r.steps));
    js.set("maxDepth", JsonValue::number(r.maxDepth));
    js.set("deadlockRuns", JsonValue::number(r.deadlockRuns));
    js.set("canonicalTraces", JsonValue::number(r.canonicalTraces));
    js.set("distinctEndStates",
           JsonValue::number(r.distinctEndStates));
    js.set("newTraces", JsonValue::number(r.newTraces));
    js.set("races", racesJson(r.races));
    js.set("benignRaces", JsonValue::number(r.benignRaces));
    js.set("reportedRaces", JsonValue::number(r.reportedRaces()));
    js.set("weakWindowRaces", JsonValue::number(r.weakWindowRaces));
    js.set("violatingRuns", JsonValue::number(r.violatingRuns));
    if (!r.minimalCounterexampleLabels.empty()) {
        js.set("minimalCounterexample",
               labelsJson(r.minimalCounterexampleLabels));
        js.set("replayConfirmed",
               JsonValue::boolean(r.replayConfirmed));
    }
    js.set("passed", JsonValue::boolean(passed));
    return js;
}

namespace
{

std::uint64_t
u64Or(const JsonValue &obj, const char *key, std::uint64_t fallback)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->kind() == JsonValue::Kind::Number
               ? v->asU64()
               : fallback;
}

bool
boolOr(const JsonValue &obj, const char *key, bool fallback)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->kind() == JsonValue::Kind::Bool
               ? v->asBool()
               : fallback;
}

std::string
strOr(const JsonValue &obj, const char *key, const char *fallback)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->kind() == JsonValue::Kind::String
               ? v->asString()
               : fallback;
}

McScenarioSummary
readScenario(const JsonValue &js)
{
    McScenarioSummary s;
    s.scenario = strOr(js, "scenario", "");
    // v2 predates the memory-order axis: every v2 scenario ran SC.
    s.memoryOrder = strOr(js, "memoryOrder", "sc");
    s.exhausted = boolOr(js, "exhausted", false);
    s.executions = u64Or(js, "executions", 0);
    s.canonicalTraces = u64Or(js, "canonicalTraces", 0);
    s.violatingRuns = u64Or(js, "violatingRuns", 0);
    s.weakWindowRaces = u64Or(js, "weakWindowRaces", 0);
    if (const JsonValue *races = js.find("races");
        races != nullptr && races->kind() == JsonValue::Kind::Array)
        s.races = races->items().size();
    s.benignRaces = u64Or(js, "benignRaces", 0);
    s.confirmedRaces = u64Or(js, "confirmedRaces", 0);
    // Pre-v4 writers carried the counts but not the difference.
    s.reportedRaces =
        u64Or(js, "reportedRaces", s.races - s.benignRaces);
    s.passed = boolOr(js, "passed", false);

    if (const JsonValue *fuzz = js.find("fuzz");
        fuzz != nullptr && fuzz->kind() == JsonValue::Kind::Object) {
        s.hasFuzz = true;
        s.fuzzSamples = u64Or(*fuzz, "samples", 0);
        s.fuzzTraces = u64Or(*fuzz, "canonicalTraces", 0);
        s.fuzzNewTraces = u64Or(*fuzz, "newTraces", 0);
        s.fuzzPassed = boolOr(*fuzz, "passed", false);
    }
    return s;
}

} // namespace

McReportSummary
readMcReport(const JsonValue &report)
{
    McReportSummary out;
    out.schema = strOr(report, "schema", "");
    out.recognised = out.schema == kVerifyReportSchemaV2 ||
                     out.schema == kVerifyReportSchemaV3 ||
                     out.schema == kVerifyReportSchemaV4;
    out.ok = boolOr(report, "ok", false);

    const JsonValue *policies = report.find("policies");
    if (policies == nullptr ||
        policies->kind() != JsonValue::Kind::Array)
        return out;
    for (const JsonValue &jp : policies->items()) {
        const JsonValue *interleave = jp.find("interleave");
        if (interleave == nullptr)
            continue;
        const JsonValue *scenarios = interleave->find("scenarios");
        if (scenarios == nullptr ||
            scenarios->kind() != JsonValue::Kind::Array)
            continue;
        for (const JsonValue &js : scenarios->items())
            out.scenarios.push_back(readScenario(js));
    }
    return out;
}

} // namespace vic::verify
