/**
 * @file
 * Per-operation necessity analysis: prove every cache op a policy
 * issues load-bearing, or exhibit it as provably redundant.
 *
 * For each reachable (state, event, issued-op) triple, the analyzer
 * runs the one-op-skipped mutant: the policy's bookkeeping advances
 * exactly as shipped, but the op's hardware effect is suppressed. If
 * no violation is reachable from the mutant state the op was provably
 * redundant in that state — the machine would have stayed consistent
 * without it. An op is *removable at its call site* only when every
 * reachable instance the site issues is redundant; eager policies
 * issue many per-instance-redundant ops from sites that are
 * load-bearing elsewhere, which is precisely the waste the paper's
 * Tables 1-2 measure.
 *
 * Mutant exploration uses the AbstractSimulator's adversarial
 * semantics (write-back-under-pressure hazard, partial-line stores) so
 * an op is only called redundant if skipping it survives hardware
 * behaviour the exact single-word abstraction cannot see. Exploration
 * is memoised globally: for a sound policy every base-reachable state
 * is adversarially safe (checked, not assumed), so most mutants
 * resolve by a single hash lookup.
 */

#ifndef VIC_VERIFY_NECESSITY_HH
#define VIC_VERIFY_NECESSITY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/abstract_model.hh"
#include "verify/cost_model.hh"

namespace vic::verify
{

struct NecessityOptions
{
    SlotPlan plan = SlotPlan::standard();
    /** Cap on the base reachability exploration. */
    std::uint64_t maxStates = 4'000'000;
    /** Total budget for all mutant explorations combined. */
    std::uint64_t maxMutantStates = 8'000'000;
    MachineParams machine = MachineParams::hp720();
};

/** One provably redundant op instance, with the minimal trace that
 *  reaches it (replayable on the concrete machine). */
struct RedundantOp
{
    Trace prefix;           ///< minimal trace to the issuing state
    Event event;            ///< event whose step issued the op
    std::size_t opIndex = 0; ///< index in that step's issue order
    IssuedOp op;
    Cycles wastedCycles = 0; ///< what the concrete machine paid for it
};

/** Aggregated verdicts for one policy call site. */
struct SiteReport
{
    std::string site;
    std::uint64_t issued = 0;     ///< (state, event, op) instances
    std::uint64_t redundant = 0;
    std::uint64_t necessary = 0;
    std::uint64_t inconclusive = 0;  ///< mutant budget exhausted
    /** Worst single-instance waste among the redundant ones. */
    Cycles worstWastedCycles = 0;
    /** First redundant instance in BFS order (minimal prefix). */
    std::optional<RedundantOp> exemplar;

    /** Every instance this site ever issues is provably redundant:
     *  the call site can be deleted from the shipping policy. */
    bool removable() const { return issued > 0 && redundant == issued; }
};

struct NecessityResult
{
    std::string policyName;
    /** Base exploration found no violation (prerequisite — necessity
     *  of ops in an unsound policy is meaningless). */
    bool sound = false;
    bool fixedPointReached = false;
    /** No mutant exploration hit the budget; every verdict is a
     *  proof, none is a conservative "necessary". */
    bool complete = false;
    /** The base reachable set was adversarially clean (no write-back
     *  hazard, no stale store), enabling the safe-set memo fast path.
     *  Holds for every sound policy shipped. */
    bool adversariallyClean = false;

    std::uint64_t numStates = 0;
    std::uint64_t opsExamined = 0;
    std::uint64_t redundantOps = 0;
    std::uint64_t necessaryOps = 0;
    std::uint64_t inconclusiveOps = 0;

    /** Per-site breakdown, sorted by site label. */
    std::vector<SiteReport> sites;

    /** Filled when !sound. */
    Trace counterexample;
    std::optional<AbstractViolation> violation;

    double seconds = 0.0;

    bool anyRemovableSite() const
    {
        for (const SiteReport &s : sites)
            if (s.removable())
                return true;
        return false;
    }
};

class NecessityAnalyzer
{
  public:
    explicit NecessityAnalyzer(NecessityOptions opts = {});

    /** Explore @p policy, then prove or refute the necessity of every
     *  issued op instance. */
    NecessityResult analyze(const PolicyConfig &policy) const;

  private:
    NecessityOptions options;
};

} // namespace vic::verify

#endif // VIC_VERIFY_NECESSITY_HH
