#include "verify/abstract_model.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "core/lazy_pmap.hh"
#include "core/phys_page_info.hh"

namespace vic::verify
{

// ---------------------------------------------------------------------
// Display helpers
// ---------------------------------------------------------------------

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Load: return "load";
      case EventKind::Store: return "store";
      case EventKind::IFetch: return "ifetch";
      case EventKind::Unmap: return "unmap";
      case EventKind::UnmapMove: return "unmap-move";
      case EventKind::DmaIn: return "dma-in";
      case EventKind::DmaOut: return "dma-out";
    }
    return "?";
}

std::string
eventName(const Event &e)
{
    if (e.kind == EventKind::DmaIn || e.kind == EventKind::DmaOut)
        return eventKindName(e.kind);
    std::string s = eventKindName(e.kind);
    s += '@';
    s += static_cast<char>('A' + e.slot);
    return s;
}

std::string
traceName(const Trace &t)
{
    std::string s;
    for (const Event &e : t) {
        if (!s.empty())
            s += " -> ";
        s += eventName(e);
    }
    return s.empty() ? "<empty>" : s;
}

const char *
violationKindName(ViolationKind k)
{
    switch (k) {
      case ViolationKind::StaleLoad: return "stale-load";
      case ViolationKind::StaleIFetch: return "stale-ifetch";
      case ViolationKind::StaleDmaOut: return "stale-dma-out";
    }
    return "?";
}

std::string
IssuedOp::name() const
{
    std::string s = op == RequiredOp::Flush ? "flush " : "purge ";
    s += cache == CacheKind::Instruction ? 'i' : 'd';
    s += static_cast<char>('0' + colour);
    s += present ? (dirty ? " (present,dirty)" : " (present)")
                 : " (absent)";
    s += " @";
    s += site;
    return s;
}

// ---------------------------------------------------------------------
// Slot plan
// ---------------------------------------------------------------------

SlotPlan
SlotPlan::standard()
{
    SlotPlan p;
    // A: baseline; B: unaligned alias of A; C: aligned alias of A at a
    // different virtual address.
    p.slots = {{0, 0, 0}, {1, 1, 0}, {0, 0, 1}};
    p.dColours = 2;
    p.iColours = 2;
    return p;
}

// ---------------------------------------------------------------------
// State packing
// ---------------------------------------------------------------------

ModelState::Key
ModelState::pack() const
{
    Key k{0, 0};
    unsigned bit = 0;
    auto push = [&](std::uint64_t v, unsigned bits) {
        for (unsigned i = 0; i < bits; ++i, ++bit)
            if (v & (1ull << i))
                k[bit >> 6] |= 1ull << (bit & 63);
    };

    push(memFresh, 1);
    for (const DLine &l : dline) {
        push(l.present, 1);
        push(l.fresh, 1);
        push(l.dirty, 1);
    }
    for (const ILine &l : iline) {
        push(l.present, 1);
        push(l.fresh, 1);
    }
    for (unsigned i = 0; i < kMaxSlots; ++i) {
        push(live[i], 1);
        push(modbit[i], 1);
        push(vaGen[i], 1);
        push(hwWrite[i], 1);
        push(hwExec[i], 1);
    }
    for (unsigned i = 0; i < kMaxSlots; ++i)
        push(order[i], 2);
    push(numLive, 3);
    push(everTouched, 1);
    push(dMapped, 4);
    push(dStale, 4);
    push(iMapped, 4);
    push(iStale, 4);
    push(dCacheDirty, 1);
    push(execMode, 1);
    push(hasResidue, 1);
    push(residueSlot, 2);
    push(residueGen, 1);
    push(residueDirty, 1);
    push(residueExec, 1);
    vic_assert(bit <= 128, "ModelState::pack overflow (%u bits)", bit);
    return k;
}

// ---------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------

namespace
{

CacheStateVector
makeVec(std::uint8_t mapped, std::uint8_t stale, bool dirty,
        std::uint32_t colours)
{
    CacheStateVector v(colours);
    for (std::uint32_t c = 0; c < colours; ++c) {
        if (mapped & (1u << c))
            v.mapped.set(c);
        if (stale & (1u << c))
            v.stale.set(c);
    }
    v.cacheDirty = dirty;
    return v;
}

std::uint8_t
maskOf(const BitVector &b)
{
    std::uint8_t m = 0;
    for (std::uint32_t c = 0; c < b.size(); ++c)
        if (b.test(c))
            m |= static_cast<std::uint8_t>(1u << c);
    return m;
}

} // namespace

AbstractSimulator::AbstractSimulator(const PolicyConfig &policy,
                                     SlotPlan plan, bool adversarial)
    : cfg(policy), slotPlan(std::move(plan)),
      lazy(policy.pmapKind == PmapKind::Lazy), advMode(adversarial)
{
    vic_assert(slotPlan.slots.size() <= kMaxSlots,
               "slot plan too large");
    vic_assert(slotPlan.dColours <= kMaxColours &&
                   slotPlan.iColours <= kMaxColours,
               "slot plan uses too many colours");
    for (const SlotPlan::Slot &s : slotPlan.slots)
        vic_assert(s.dColour < slotPlan.dColours &&
                       s.iColour < slotPlan.iColours,
                   "slot colour out of range");
}

std::vector<Event>
AbstractSimulator::alphabet() const
{
    // UnmapMove (remap at a fresh, still-aligned virtual address) is
    // observable only under per-VA residue tracking; everywhere else
    // it is identical to Unmap and would only blow up the state space.
    const bool per_va = !lazy && !cfg.cleanOnUnmap && cfg.equalVaOnly &&
        !cfg.brokenNoConsistency;

    std::vector<Event> out;
    for (std::uint8_t s = 0; s < slotPlan.slots.size(); ++s) {
        out.push_back({EventKind::Load, s});
        out.push_back({EventKind::Store, s});
        out.push_back({EventKind::IFetch, s});
        out.push_back({EventKind::Unmap, s});
        if (per_va)
            out.push_back({EventKind::UnmapMove, s});
    }
    out.push_back({EventKind::DmaIn, 0});
    out.push_back({EventKind::DmaOut, 0});
    return out;
}

ModelState
AbstractSimulator::initial() const
{
    return ModelState{};
}

bool
AbstractSimulator::conflicts(std::uint8_t a, std::uint8_t b) const
{
    if (cfg.breakAlignedAliases)
        return true;
    return dcol(a) != dcol(b);
}

// ---------------------------------------------------------------------
// Issued-op instrumentation
// ---------------------------------------------------------------------

/** Sets the active call-site label for ops issued in its scope. */
struct AbstractSimulator::SiteScope
{
    const AbstractSimulator &sim;
    const char *saved;
    SiteScope(const AbstractSimulator &s, const char *site)
        : sim(s), saved(s.curSite)
    {
        sim.curSite = site;
    }
    ~SiteScope() { sim.curSite = saved; }
    SiteScope(const SiteScope &) = delete;
    SiteScope &operator=(const SiteScope &) = delete;
};

bool
AbstractSimulator::issueOp(CacheKind cache, RequiredOp op,
                           CachePageId colour, bool present,
                           bool dirty) const
{
    if (rec)
        rec->ops.push_back({cache, op, colour, present, dirty, curSite});
    const bool apply = opCursor != skipAt;
    ++opCursor;
    return apply;
}

bool
AbstractSimulator::hazard(const ModelState &s)
{
    for (const ModelState::DLine &l : s.dline)
        if (l.present && l.dirty && !l.fresh)
            return true;
    return false;
}

// ---------------------------------------------------------------------
// Ground truth
// ---------------------------------------------------------------------

void
AbstractSimulator::gtFlushData(ModelState &s, CachePageId c) const
{
    ModelState::DLine &l = s.dline[c];
    if (!issueOp(CacheKind::Data, RequiredOp::Flush, c, l.present,
                 l.present && l.dirty))
        return;
    if (!l.present)
        return;
    // A dirty write-back replaces memory's copy: memory now holds
    // whatever the line held. Flushing a STALE dirty line clobbers
    // fresh memory — the classic lost-update failure.
    if (l.dirty)
        s.memFresh = l.fresh;
    l = ModelState::DLine{};
}

void
AbstractSimulator::gtPurgeData(ModelState &s, CachePageId c) const
{
    ModelState::DLine &l = s.dline[c];
    if (!issueOp(CacheKind::Data, RequiredOp::Purge, c, l.present,
                 l.present && l.dirty))
        return;
    // Purging the only fresh copy silently loses the newest data;
    // that is detected at the next observing event, when no fresh
    // copy remains.
    l = ModelState::DLine{};
}

void
AbstractSimulator::gtPurgeInst(ModelState &s, CachePageId c) const
{
    ModelState::ILine &l = s.iline[c];
    if (!issueOp(CacheKind::Instruction, RequiredOp::Purge, c, l.present,
                 false))
        return;
    l = ModelState::ILine{};
}

std::string
AbstractSimulator::classify(const ModelState &s, bool ifetch) const
{
    (void)ifetch;
    bool any_fresh = s.memFresh;
    bool fresh_dirty = false;
    for (const ModelState::DLine &l : s.dline) {
        any_fresh |= l.present && l.fresh;
        fresh_dirty |= l.present && l.fresh && l.dirty;
    }
    for (const ModelState::ILine &l : s.iline)
        any_fresh |= l.present && l.fresh;

    if (!any_fresh)
        return "newest data was destroyed (lost dirty write-back or "
               "clobbering flush)";
    if (fresh_dirty)
        return "unflushed dirty cache page shadows the newest data";
    return "observed a stale copy while a newer one exists elsewhere";
}

std::optional<AbstractViolation>
AbstractSimulator::gtCpuAccess(ModelState &s, std::uint8_t slot,
                               AccessType t) const
{
    if (t == AccessType::IFetch) {
        ModelState::ILine &l = s.iline[icol(slot)];
        if (!l.present) {
            l.present = true;
            l.fresh = s.memFresh;  // fill from memory
        }
        if (!l.fresh)
            return AbstractViolation{ViolationKind::StaleIFetch, slot,
                                     classify(s, true)};
        return std::nullopt;
    }

    ModelState::DLine &l = s.dline[dcol(slot)];
    if (!l.present) {
        l.present = true;
        l.fresh = s.memFresh;  // fill from memory
        l.dirty = false;
    }
    if (t == AccessType::Store) {
        // The stored word is by definition the newest value; every
        // other copy becomes stale.
        const bool hit_stale = !l.fresh;
        if (hit_stale && rec)
            rec->staleStore = true;
        // Adversarial refinement: a store into a non-newest line can
        // only freshen the stored word — the line's other words stay
        // stale in the multi-word machine, so the line as a whole
        // remains non-newest (and is now dirty: a write-back hazard).
        l.fresh = advMode ? !hit_stale : true;
        l.dirty = true;
        s.memFresh = false;
        for (std::uint32_t c = 0; c < kMaxColours; ++c) {
            if (c != dcol(slot) && s.dline[c].present)
                s.dline[c].fresh = false;
            if (s.iline[c].present)
                s.iline[c].fresh = false;
        }
        return std::nullopt;
    }
    if (!l.fresh)
        return AbstractViolation{ViolationKind::StaleLoad, slot,
                                 classify(s, false)};
    return std::nullopt;
}

// ---------------------------------------------------------------------
// Mapping order
// ---------------------------------------------------------------------

void
AbstractSimulator::addOrdered(ModelState &s, std::uint8_t slot) const
{
    vic_assert(s.numLive < kMaxSlots, "mapping order overflow");
    s.order[s.numLive++] = slot;
}

void
AbstractSimulator::removeOrdered(ModelState &s, std::uint8_t slot) const
{
    for (std::uint8_t i = 0; i < s.numLive; ++i) {
        if (s.order[i] == slot) {
            // Mirror the concrete swap-removal so later iteration
            // order matches ClassicPmap exactly.
            s.order[i] = s.order[s.numLive - 1];
            s.order[--s.numLive] = 0;
            return;
        }
    }
    vic_panic("removeOrdered: slot not in mapping order");
}

void
AbstractSimulator::normalize(ModelState &s) const
{
    if (lazy) {
        // Lazy semantics are independent of mapping order; canonical
        // ascending order collapses equivalent states.
        std::uint8_t n = 0;
        for (std::uint8_t k = 0; k < kMaxSlots; ++k)
            if (s.live[k])
                s.order[n++] = k;
        s.numLive = n;
    }
    for (std::uint8_t i = s.numLive; i < kMaxSlots; ++i)
        s.order[i] = 0;
}

// ---------------------------------------------------------------------
// The trap-and-retry CPU path (Cpu::access + Kernel::handleFault)
// ---------------------------------------------------------------------

bool
AbstractSimulator::accessPermitted(const ModelState &s,
                                   std::uint8_t slot,
                                   AccessType t) const
{
    if (!lazy) {
        switch (t) {
          case AccessType::Load: return true;
          case AccessType::Store: return s.hwWrite[slot];
          case AccessType::IFetch: return s.hwExec[slot];
        }
        return false;
    }
    const CacheStateVector d =
        makeVec(s.dMapped, s.dStale, s.dCacheDirty, slotPlan.dColours);
    const CacheStateVector i =
        makeVec(s.iMapped, s.iStale, false, slotPlan.iColours);
    const Protection p = LazyPmap::cacheStateProt(
        d, i, dcol(slot), icol(slot), cfg.useModifiedBit);
    return protPermits(p, t);
}

std::optional<AbstractViolation>
AbstractSimulator::cpuAccess(ModelState &s, std::uint8_t slot,
                             AccessType t) const
{
    // The concrete CPU retries a faulting access after the handler
    // resolves it; two resolution rounds (mapping fault, then
    // consistency fault) always suffice, but mirror the retry bound.
    for (int attempt = 0; attempt < 8; ++attempt) {
        if (!s.live[slot]) {
            // Demand mapping with default hints, as the kernel's
            // resolveMappingFault does.
            if (rec) {
                ++rec->traps;
                ++rec->pmapCalls;
            }
            if (lazy)
                lazyEnter(s, slot, t);
            else
                classicEnter(s, slot, t);
            continue;
        }
        if (!accessPermitted(s, slot, t)) {
            if (rec) {
                ++rec->traps;
                ++rec->pmapCalls;
            }
            bool resolved;
            if (lazy) {
                const SiteScope scope(
                    *this, t == AccessType::IFetch ? "lazy.ifetch-fault"
                                                   : "lazy.fault");
                lazyCacheControl(s,
                                 isWrite(t) ? MemOp::CpuWrite
                                            : MemOp::CpuRead,
                                 slot, t, false, true);
                resolved = true;
            } else {
                resolved = classicResolveFault(s, slot, t);
            }
            vic_assert(resolved,
                       "consistency fault not resolvable (%s slot %u)",
                       accessTypeName(t), slot);
            continue;
        }
        // Access proceeds: hardware sets the page-modified bit on a
        // write. (Untracked when the policy never reads it, so
        // equivalent behaviours collapse to equal states.)
        if (isWrite(t) && (!lazy || cfg.useModifiedBit))
            s.modbit[slot] = true;
        return gtCpuAccess(s, slot, t);
    }
    vic_panic("abstract access retry loop did not converge");
}

// ---------------------------------------------------------------------
// Lazy policy (through LazyPmap's extracted pure logic)
// ---------------------------------------------------------------------

void
AbstractSimulator::lazySync(ModelState &s) const
{
    for (std::uint8_t i = 0; i < s.numLive; ++i) {
        const std::uint8_t k = s.order[i];
        if (!s.modbit[k])
            continue;
        s.modbit[k] = false;
        if (!s.dCacheDirty) {
            vic_assert(
                std::popcount(static_cast<unsigned>(s.dMapped)) == 1,
                "modified bit with %u mapped colours",
                std::popcount(static_cast<unsigned>(s.dMapped)));
            s.dCacheDirty = true;
        }
    }
}

void
AbstractSimulator::lazyCacheControl(ModelState &s, MemOp op,
                                    std::optional<std::uint8_t> slot,
                                    AccessType access,
                                    bool will_overwrite,
                                    bool need_data) const
{
    if (cfg.useModifiedBit)
        lazySync(s);

    CacheStateVector d =
        makeVec(s.dMapped, s.dStale, s.dCacheDirty, slotPlan.dColours);
    CacheStateVector i =
        makeVec(s.iMapped, s.iStale, false, slotPlan.iColours);

    std::optional<CachePageId> cd, ci;
    if (slot) {
        cd = dcol(*slot);
        ci = icol(*slot);
    }

    const std::vector<LazyPmap::PlannedOp> planned =
        LazyPmap::planCacheControl(d, i, op, cd, ci, access,
                                   will_overwrite, need_data,
                                   cfg.useNeedData,
                                   cfg.useWillOverwrite);

    s.dMapped = maskOf(d.mapped);
    s.dStale = maskOf(d.stale);
    s.dCacheDirty = d.cacheDirty;
    s.iMapped = maskOf(i.mapped);
    s.iStale = maskOf(i.stale);
    d.checkInvariants();
    i.checkInvariants();

    for (const LazyPmap::PlannedOp &p : planned) {
        if (p.cache == CacheKind::Instruction)
            gtPurgeInst(s, p.colour);
        else if (p.op == RequiredOp::Flush)
            gtFlushData(s, p.colour);
        else
            gtPurgeData(s, p.colour);
    }
}

void
AbstractSimulator::lazyEnter(ModelState &s, std::uint8_t slot,
                             AccessType t) const
{
    s.everTouched = true;
    s.live[slot] = true;
    s.modbit[slot] = false;
    addOrdered(s, slot);
    const SiteScope scope(*this, t == AccessType::IFetch
                                     ? "lazy.ifetch-enter"
                                     : "lazy.enter");
    lazyCacheControl(s, isWrite(t) ? MemOp::CpuWrite : MemOp::CpuRead,
                     slot, t, /*will_overwrite=*/false,
                     /*need_data=*/true);
}

void
AbstractSimulator::lazyUnmap(ModelState &s, std::uint8_t slot) const
{
    if (!s.live[slot])
        return;
    // Capture dirtiness carried by the modified bit, then drop the
    // translation; lazy unmap performs no cache operation.
    if (cfg.useModifiedBit)
        lazySync(s);
    s.modbit[slot] = false;
    s.live[slot] = false;
    removeOrdered(s, slot);
}

// ---------------------------------------------------------------------
// Classic policy (mirrors ClassicPmap)
// ---------------------------------------------------------------------

bool
AbstractSimulator::classicColourPossiblyDirty(const ModelState &s,
                                              CachePageId c,
                                              bool base_modified) const
{
    if (base_modified)
        return true;
    for (std::uint8_t i = 0; i < s.numLive; ++i) {
        const std::uint8_t k = s.order[i];
        if (dcol(k) == c && s.modbit[k])
            return true;
    }
    return false;
}

void
AbstractSimulator::classicCleanResidue(ModelState &s,
                                       bool base_modified) const
{
    if (!s.hasResidue)
        return;
    // Dirt written through a live aligned sibling (or the mapping
    // being removed right now) lives in the residue's cache page too.
    const bool dirty = s.residueDirty ||
        classicColourPossiblyDirty(s, dcol(s.residueSlot),
                                   base_modified);
    if (dirty)
        gtFlushData(s, dcol(s.residueSlot));
    else
        gtPurgeData(s, dcol(s.residueSlot));
    if (s.residueExec)
        gtPurgeInst(s, icol(s.residueSlot));
    s.hasResidue = false;
    s.residueSlot = 0;
    s.residueGen = s.residueDirty = s.residueExec = false;
}

void
AbstractSimulator::classicCleanThrough(ModelState &s, std::uint8_t slot,
                                       bool flush_dirty,
                                       bool had_exec) const
{
    if (flush_dirty)
        gtFlushData(s, dcol(slot));
    else
        gtPurgeData(s, dcol(slot));
    if (had_exec)
        gtPurgeInst(s, icol(slot));
}

void
AbstractSimulator::classicEnterExecMode(ModelState &s,
                                        CachePageId icolour) const
{
    // Flush every colour a live mapping may have dirtied, consuming
    // modified bits — but only the first mapping of an already-flushed
    // colour is consulted, exactly as the concrete loop works.
    std::array<bool, kMaxColours> flushed{};
    for (std::uint8_t i = 0; i < s.numLive; ++i) {
        const std::uint8_t k = s.order[i];
        const CachePageId c = dcol(k);
        if (flushed[c])
            continue;
        const bool modified = s.modbit[k];
        s.modbit[k] = false;
        if (classicColourPossiblyDirty(s, c, modified)) {
            gtFlushData(s, c);
            flushed[c] = true;
        }
    }
    // A dirty residue (Tut) holds newest data too; no live mapping's
    // modified bit covers it.
    if (s.hasResidue && s.residueDirty) {
        gtFlushData(s, dcol(s.residueSlot));
        s.residueDirty = false;
    }
    gtPurgeInst(s, icolour);
    for (std::uint8_t i = 0; i < s.numLive; ++i)
        s.hwWrite[s.order[i]] = false;
    s.execMode = true;
}

void
AbstractSimulator::classicEnterWriteMode(ModelState &s) const
{
    for (std::uint8_t i = 0; i < s.numLive; ++i)
        s.hwExec[s.order[i]] = false;
    s.execMode = false;
}

void
AbstractSimulator::classicBreakMapping(ModelState &s,
                                       std::uint8_t slot) const
{
    const bool modified = s.modbit[slot];
    s.modbit[slot] = false;
    s.live[slot] = false;  // translation dropped before the dirtiness
                           // scan, as in the concrete breakMapping
    const bool dirty =
        classicColourPossiblyDirty(s, dcol(slot), modified);
    classicCleanThrough(s, slot, dirty, /*had_exec=*/true);
    removeOrdered(s, slot);
    s.hwWrite[slot] = s.hwExec[slot] = false;
}

void
AbstractSimulator::classicEnter(ModelState &s, std::uint8_t slot,
                                AccessType t) const
{
    s.everTouched = true;

    if (cfg.brokenNoConsistency) {
        s.live[slot] = true;
        s.modbit[slot] = false;
        s.hwWrite[slot] = true;
        s.hwExec[slot] = true;
        addOrdered(s, slot);
        return;
    }

    // A matching dirty residue is consumed without a flush; its
    // dirtiness is carried into the new mapping's modified bit (or
    // flushed right here when this very enter switches to exec mode).
    bool carry_dirty = false;
    if (s.hasResidue) {
        const bool matches = cfg.equalVaOnly
            ? (s.residueSlot == slot && s.residueGen == s.vaGen[slot])
            : (dcol(s.residueSlot) == dcol(slot));
        if (!matches) {
            const SiteScope scope(*this,
                                  "classic.enter.clean-residue");
            classicCleanResidue(s);
            // No purge of the NEW colour: the residue is the only
            // place this frame's lines survive outside live
            // mappings (any earlier residue was cleaned when it was
            // replaced), so the new cache page cannot hold the
            // frame's stale data. The necessity analyzer proves
            // every instance of such a purge redundant.
        } else {
            carry_dirty = s.residueDirty;
            s.hasResidue = false;
            s.residueSlot = 0;
            s.residueGen = s.residueDirty = s.residueExec = false;
        }
    }

    bool conflicting_alias = false;
    std::vector<std::uint8_t> to_break;
    for (std::uint8_t i = 0; i < s.numLive; ++i) {
        const std::uint8_t k = s.order[i];
        if (!conflicts(k, slot))
            continue;
        conflicting_alias = true;
        if (isWrite(t) || s.hwWrite[k] || s.modbit[k])
            to_break.push_back(k);
    }
    {
        const SiteScope scope(*this, "classic.enter.break-alias");
        for (std::uint8_t k : to_break)
            classicBreakMapping(s, k);
    }

    bool eff_write = true, eff_exec = true;  // vmProt == all
    if (!isWrite(t) && conflicting_alias)
        eff_write = false;

    if (t == AccessType::IFetch && eff_exec) {
        if (!s.execMode) {
            if (carry_dirty) {
                const SiteScope scope(*this,
                                      "classic.enter.carry-flush");
                gtFlushData(s, dcol(slot));
                carry_dirty = false;
            }
            const SiteScope scope(*this, "classic.exec-mode");
            classicEnterExecMode(s, icol(slot));
        }
        eff_write = false;
    } else {
        if (isWrite(t) && s.execMode)
            classicEnterWriteMode(s);
        if (s.execMode)
            eff_write = false;
        else
            eff_exec = false;
    }

    s.live[slot] = true;
    s.modbit[slot] = carry_dirty;
    s.hwWrite[slot] = eff_write;
    s.hwExec[slot] = eff_exec;
    addOrdered(s, slot);
}

void
AbstractSimulator::classicUnmap(ModelState &s, std::uint8_t slot) const
{
    if (!s.live[slot])
        return;
    const bool modified = s.modbit[slot];
    s.modbit[slot] = false;
    s.live[slot] = false;
    s.hwWrite[slot] = s.hwExec[slot] = false;
    removeOrdered(s, slot);

    if (cfg.brokenNoConsistency) {
        // Leave whatever is in the cache.
    } else if (cfg.cleanOnUnmap) {
        const SiteScope scope(*this, "classic.unmap.clean");
        const bool dirty =
            classicColourPossiblyDirty(s, dcol(slot), modified);
        classicCleanThrough(s, slot, dirty, /*had_exec=*/true);
    } else {
        // Tut residue: one per frame; a pre-existing residue at a
        // different address must be cleaned now.
        const SiteScope scope(*this, "classic.unmap.clean-residue");
        if (s.hasResidue && !(s.residueSlot == slot &&
                              s.residueGen == s.vaGen[slot]))
            classicCleanResidue(s, modified &&
                                       dcol(slot) ==
                                           dcol(s.residueSlot));
        s.hasResidue = true;
        s.residueSlot = slot;
        s.residueGen = s.vaGen[slot];
        s.residueDirty = modified;
        s.residueExec = true;  // vmProt == all
    }
}

bool
AbstractSimulator::classicResolveFault(ModelState &s, std::uint8_t slot,
                                       AccessType t) const
{
    if (cfg.brokenNoConsistency) {
        s.hwWrite[slot] = true;
        s.hwExec[slot] = true;
        return t != AccessType::Load;
    }

    if (t == AccessType::IFetch) {
        // Only the write-to-execute mode switch needs cache work.
        // While exec mode holds, stores trap (write-xor-execute) and
        // DMA input purges eagerly, so no instruction cache page can
        // be stale — the necessity analyzer proves the old
        // purge-on-every-ifetch-fault redundant in every instance.
        if (!s.execMode) {
            const SiteScope scope(*this, "classic.exec-mode");
            classicEnterExecMode(s, icol(slot));
        }
        s.hwWrite[slot] = false;
        s.hwExec[slot] = true;
        return true;
    }

    if (t != AccessType::Store)
        return false;  // reads are never denied for consistency

    if (s.execMode)
        classicEnterWriteMode(s);

    // A residue at a conflicting address is an alias too: clean it
    // before the store makes its cache page stale.
    if (s.hasResidue && conflicts(s.residueSlot, slot)) {
        const SiteScope scope(*this, "classic.fault.clean-residue");
        classicCleanResidue(s);
    }

    std::vector<std::uint8_t> to_break;
    for (std::uint8_t i = 0; i < s.numLive; ++i) {
        const std::uint8_t k = s.order[i];
        if (k != slot && conflicts(k, slot))
            to_break.push_back(k);
    }
    {
        const SiteScope scope(*this, "classic.fault.break-alias");
        for (std::uint8_t k : to_break)
            classicBreakMapping(s, k);
    }

    s.hwWrite[slot] = true;
    s.hwExec[slot] = false;
    return true;
}

void
AbstractSimulator::classicDmaRead(ModelState &s) const
{
    if (cfg.brokenNoConsistency)
        return;
    if (!s.everTouched)
        return;
    const SiteScope scope(*this, "classic.dma-out.flush");
    if (rec)
        ++rec->pmapCalls;
    for (std::uint8_t i = 0; i < s.numLive; ++i) {
        const std::uint8_t k = s.order[i];
        if (s.modbit[k]) {
            s.modbit[k] = false;
            gtFlushData(s, dcol(k));
        }
    }
    if (s.hasResidue && s.residueDirty) {
        gtFlushData(s, dcol(s.residueSlot));
        s.residueDirty = false;
    }
}

void
AbstractSimulator::classicDmaWrite(ModelState &s) const
{
    if (cfg.brokenNoConsistency)
        return;
    if (!s.everTouched)
        return;
    const SiteScope scope(*this, "classic.dma-in.purge");
    if (rec)
        ++rec->pmapCalls;
    for (std::uint8_t i = 0; i < s.numLive; ++i) {
        const std::uint8_t k = s.order[i];
        s.modbit[k] = false;
        gtPurgeData(s, dcol(k));
        gtPurgeInst(s, icol(k));  // vmProt == all
    }
    if (s.hasResidue) {
        gtPurgeData(s, dcol(s.residueSlot));
        if (s.residueExec)
            gtPurgeInst(s, icol(s.residueSlot));
        s.hasResidue = false;
        s.residueSlot = 0;
        s.residueGen = s.residueDirty = s.residueExec = false;
    }
}

// ---------------------------------------------------------------------
// Step
// ---------------------------------------------------------------------

std::optional<AbstractViolation>
AbstractSimulator::step(ModelState &s, const Event &e) const
{
    opCursor = 0;
    std::optional<AbstractViolation> violation;

    switch (e.kind) {
      case EventKind::Load:
        violation = cpuAccess(s, e.slot, AccessType::Load);
        break;
      case EventKind::Store:
        violation = cpuAccess(s, e.slot, AccessType::Store);
        break;
      case EventKind::IFetch:
        violation = cpuAccess(s, e.slot, AccessType::IFetch);
        break;

      case EventKind::Unmap:
      case EventKind::UnmapMove:
        if (lazy)
            lazyUnmap(s, e.slot);
        else
            classicUnmap(s, e.slot);
        if (e.kind == EventKind::UnmapMove)
            s.vaGen[e.slot] = !s.vaGen[e.slot];
        break;

      case EventKind::DmaIn:
        // Policy preparation, then the device writes word 0.
        if (lazy) {
            if (s.everTouched) {
                const SiteScope scope(*this, "lazy.dma-in");
                if (rec)
                    ++rec->pmapCalls;
                lazyCacheControl(s, MemOp::DmaWrite, std::nullopt,
                                 AccessType::Load, false, false);
            }
        } else {
            classicDmaWrite(s);
        }
        s.memFresh = true;
        for (std::uint32_t c = 0; c < kMaxColours; ++c) {
            // Cached copies go stale; dirty lines stay dirty and will
            // clobber the device's data if ever written back.
            if (s.dline[c].present)
                s.dline[c].fresh = false;
            if (s.iline[c].present)
                s.iline[c].fresh = false;
        }
        break;

      case EventKind::DmaOut:
        if (lazy) {
            if (s.everTouched) {
                const SiteScope scope(*this, "lazy.dma-out");
                if (rec)
                    ++rec->pmapCalls;
                lazyCacheControl(s, MemOp::DmaRead, std::nullopt,
                                 AccessType::Load, false, true);
            }
        } else {
            classicDmaRead(s);
        }
        if (!s.memFresh)
            violation = AbstractViolation{ViolationKind::StaleDmaOut, 0,
                                          classify(s, false)};
        break;
    }

    normalize(s);
    return violation;
}

std::optional<AbstractViolation>
AbstractSimulator::stepTraced(ModelState &s, const Event &e,
                              StepTrace &out) const
{
    out = StepTrace{};
    rec = &out;
    const std::optional<AbstractViolation> v = step(s, e);
    rec = nullptr;
    return v;
}

std::optional<AbstractViolation>
AbstractSimulator::stepSkipping(ModelState &s, const Event &e,
                                std::size_t skip) const
{
    skipAt = static_cast<long>(skip);
    const std::optional<AbstractViolation> v = step(s, e);
    skipAt = -1;
    return v;
}

} // namespace vic::verify
