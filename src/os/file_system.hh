/**
 * @file
 * Simple flat file system metadata: names, sizes, and the mapping from
 * (file, file block) to disk blocks. Data lives on the simulated disk
 * and in the buffer cache; this class only does bookkeeping.
 */

#ifndef VIC_OS_FILE_SYSTEM_HH
#define VIC_OS_FILE_SYSTEM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "os/vm_object.hh"

namespace vic
{

class FileSystem
{
  public:
    explicit FileSystem(StatSet &stat_set);

    /** Create an empty file. The name must be unused. */
    FileId create(const std::string &name);

    /** Look up a file by name. */
    std::optional<FileId> lookup(const std::string &name) const;

    /** Delete a file (blocks are recycled). */
    void remove(FileId file);

    bool exists(FileId file) const;

    std::uint64_t sizeBytes(FileId file) const;
    void extendTo(FileId file, std::uint64_t size_bytes);

    /** Number of file blocks @p file occupies at its current size. */
    std::uint64_t numBlocks(FileId file, std::uint32_t block_bytes) const;

    /** @return true iff file block @p block has ever been assigned a
     *  disk block (i.e. contains written data). */
    bool hasDiskBlock(FileId file, std::uint64_t block) const;

    /** Disk block backing file block @p block, allocating one if
     *  needed. */
    std::uint64_t diskBlockFor(FileId file, std::uint64_t block);

    /** Disk block if assigned (no allocation). */
    std::optional<std::uint64_t> diskBlockIfAny(FileId file,
                                                std::uint64_t block) const;

  private:
    struct File
    {
        std::string name;
        std::uint64_t sizeBytes = 0;
        std::vector<std::optional<std::uint64_t>> blocks;
        bool live = true;
    };

    std::vector<File> files;
    std::unordered_map<std::string, FileId> byName;
    std::vector<std::uint64_t> freeDiskBlocks;
    std::uint64_t nextDiskBlock = 0;

    Counter &statCreates;
    Counter &statDeletes;

    File &get(FileId file);
    const File &get(FileId file) const;
};

} // namespace vic

#endif // VIC_OS_FILE_SYSTEM_HH
