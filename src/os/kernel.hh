/**
 * @file
 * The Mach-like operating system layer.
 *
 * Owns the pmap (consistency policy), the physical frame pool, the
 * task address spaces, the Unix-server emulation (shared syscall
 * pages, buffer-cache file system) and the machine-independent VM
 * fault handler. Workloads drive the system exclusively through this
 * class, so every policy configuration sees the identical operation
 * stream — only the consistency management differs.
 *
 * The OS paths that generate cache-consistency traffic in the paper
 * are all here:
 *
 *  - demand zero-fill and copy-on-write page preparation;
 *  - IPC page transfer with kernel-selected destination addresses;
 *  - Unix-server shared syscall pages (aliased between server and
 *    task);
 *  - file reads/writes through the buffer cache, with disk DMA and
 *    write-behind;
 *  - program text faults that copy file data into pages that are then
 *    executed (the data-cache to instruction-cache path);
 *  - task teardown and physical page recycling through the free list.
 */

#ifndef VIC_OS_KERNEL_HH
#define VIC_OS_KERNEL_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/pmap.hh"
#include "machine/cpu.hh"
#include "machine/machine.hh"
#include "mem/free_page_list.hh"
#include "os/address_space.hh"
#include "os/buffer_cache.hh"
#include "os/file_system.hh"
#include "os/os_params.hh"
#include "os/page_preparer.hh"
#include "os/pageout.hh"

namespace vic
{

using TaskId = std::uint32_t;

class Kernel
{
  public:
    Kernel(Machine &m, const PolicyConfig &policy,
           const OsParams &os_params = {});
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    Machine &machine() { return mach; }
    /** CPU @p id's execution context (the boot CPU by default; the
     *  kernel and Unix server run there). */
    Cpu &cpu(std::uint32_t id = 0) { return *cpus.at(id); }

    /** The CPU a task is scheduled on (round-robin placement). */
    Cpu &taskCpu(TaskId task);
    Pmap &pmap() { return *pmapImpl; }
    FileSystem &fs() { return fileSystem; }
    BufferCache &bufferCache() { return *bufCache; }
    PagePreparer &preparer() { return *pagePreparer; }
    const OsParams &params() const { return osParams; }
    const PolicyConfig &policy() const { return pmapImpl->config(); }

    // ------------------------------------------------------------------
    // Tasks
    // ------------------------------------------------------------------

    /** Create a task with its Unix-server shared page(s). */
    TaskId createTask();

    /** Tear down a task: unmap everything, free private pages. */
    void destroyTask(TaskId task);

    /** The task's address space (tests). */
    AddressSpace &addressSpace(TaskId task);

    /** The Unix server's address space (tests). */
    AddressSpace &serverAddressSpace() { return *serverAs; }

    // ------------------------------------------------------------------
    // Virtual memory
    // ------------------------------------------------------------------

    /** Allocate @p pages of anonymous zero-fill memory; the kernel
     *  picks the address unless @p fixed is given. */
    VirtAddr vmAllocate(TaskId task, std::uint32_t pages,
                        std::optional<VirtAddr> fixed = std::nullopt);

    /** Deallocate the region starting at @p start. */
    void vmDeallocate(TaskId task, VirtAddr start);

    /** Map @p object shared into the task (aliases!). */
    VirtAddr vmMapShared(TaskId task, std::shared_ptr<VmObject> object,
                         Protection prot,
                         std::optional<VirtAddr> fixed = std::nullopt);

    /** Map @p object copy-on-write into the task. */
    VirtAddr vmMapCow(TaskId task, std::shared_ptr<VmObject> object,
                      std::optional<VirtAddr> fixed = std::nullopt);

    /** Change the VM protection of the region at @p start (bounded by
     *  the region's maximum protection). Resident mappings are
     *  re-protected through the pmap immediately. */
    void vmProtect(TaskId task, VirtAddr start, Protection prot);

    /** The VM object backing the region at @p start (so callers can
     *  share it into other tasks). */
    std::shared_ptr<VmObject> regionObject(TaskId task, VirtAddr start);

    // ------------------------------------------------------------------
    // User-mode accesses (the workload's instruction stream)
    // ------------------------------------------------------------------

    std::uint32_t userLoad(TaskId task, VirtAddr va);
    void userStore(TaskId task, VirtAddr va, std::uint32_t value);
    std::uint32_t userExec(TaskId task, VirtAddr va);

    /** Touch one page: one access per cache line, loads or stores. */
    void userTouchPage(TaskId task, VirtAddr page_va, bool write,
                       std::uint32_t value_seed = 0);

    /** Model @p cycles of pure computation. */
    void userCompute(Cycles cycles);

    // ------------------------------------------------------------------
    // Files (routed through the Unix-server shared-page syscall stub)
    // ------------------------------------------------------------------

    FileId fileCreate(TaskId task, const std::string &name);
    FileId fileOpen(TaskId task, const std::string &name);
    void fileDelete(TaskId task, const std::string &name);

    /** write(2): the task's data is passed through the shared page and
     *  written into the buffer cache. */
    void fileWrite(TaskId task, FileId file, std::uint64_t offset,
                   std::uint32_t bytes, std::uint32_t value_seed);

    /** read(2): data is copied from the buffer cache into the shared
     *  page and consumed by the task. */
    void fileRead(TaskId task, FileId file, std::uint64_t offset,
                  std::uint32_t bytes);

    /** Out-of-line read: one file block is copied into a fresh page
     *  which is transferred to the task by IPC (kernel-chosen
     *  destination address). @return the address in the task. */
    VirtAddr fileReadPageIpc(TaskId task, FileId file,
                             std::uint64_t block);

    /** fsync()-ish: push all dirty buffers to disk. */
    void fileSyncAll();

    // ------------------------------------------------------------------
    // Program text
    // ------------------------------------------------------------------

    /** Map @p file's first @p pages as the task's program text at the
     *  fixed text base. Text frames are shared between tasks running
     *  the same file. */
    VirtAddr mapText(TaskId task, FileId file, std::uint32_t pages);

    /** Execute: one ifetch per cache line over @p pages pages of the
     *  task's text. */
    void execText(TaskId task, std::uint32_t first_page,
                  std::uint32_t pages);

    // ------------------------------------------------------------------
    // IPC
    // ------------------------------------------------------------------

    /** Transfer the page at (@p from, @p src_va) to @p to; the kernel
     *  selects the destination address (aligned when the policy says
     *  so). The source must be a single-page anonymous region. */
    VirtAddr ipcTransferPage(TaskId from, VirtAddr src_va, TaskId to);

    /** Transfer a whole region (out-of-line IPC memory): the region's
     *  pages move from @p from to @p to without copying; the kernel
     *  picks a destination address whose first page aligns with the
     *  source when the policy allows. */
    VirtAddr ipcTransferRegion(TaskId from, VirtAddr src_start,
                               TaskId to);

    // ------------------------------------------------------------------
    // Physical frames (used by the buffer cache and tests)
    // ------------------------------------------------------------------

    /** Allocate a frame, preferring one whose cache footprint matches
     *  @p wanted_colour. */
    FrameId allocFrame(std::optional<CachePageId> wanted_colour);

    /** Return a frame to the free list. */
    void freeFrame(FrameId frame);

    FreePageList &freeList() { return framePool; }

    /** Free frame count (tests). */
    std::uint64_t freeFrames() const { return framePool.size(); }

    PageoutDaemon &pageout() { return *pageoutDaemon; }

  private:
    friend class BufferCache;

    struct Task
    {
        TaskId id = 0;
        SpaceId space = 0;
        std::uint32_t cpu = 0;  ///< round-robin home CPU
        std::unique_ptr<AddressSpace> as;
        std::shared_ptr<VmObject> sharedObj;
        VirtAddr sharedTaskVa;
        VirtAddr sharedServerVa;
        bool live = false;
    };

    Machine &mach;
    OsParams osParams;
    std::unique_ptr<Pmap> pmapImpl;
    std::vector<std::unique_ptr<Cpu>> cpus;
    FreePageList framePool;
    FileSystem fileSystem;
    std::unique_ptr<BufferCache> bufCache;
    std::unique_ptr<PagePreparer> pagePreparer;
    std::unique_ptr<PageoutDaemon> pageoutDaemon;
    std::unique_ptr<AddressSpace> serverAs;

    std::vector<Task> tasks;
    SpaceId nextSpace = OsParams::firstTaskSpace;
    std::uint32_t sharedAllocCursor = 0;

    std::uint32_t syscallStamp = 1;

    Counter &statMappingFaults;
    Counter &statConsistencyFaults;
    Counter &statCowFaults;
    Counter &statDToICopies;
    Counter &statIpcTransfers;
    Counter &statSyscalls;
    Counter &statPageins;

    Task &getTask(TaskId task);
    AddressSpace &spaceFor(SpaceId space);

    /** CPU fault upcall. */
    bool handleFault(const Fault &fault);

    /** Resolve a fault on an unmapped page (demand paging). */
    bool resolveMappingFault(const Fault &fault);

    /** Resolve a copy-on-write store. */
    bool resolveCowFault(const Fault &fault, AddressSpace &as,
                         Region &region);

    /** Materialise the page backing (@p region, @p page_idx). */
    FrameId faultInPage(Region &region, std::uint32_t page_idx,
                        VirtAddr page_va, AccessType access);

    /** Unmap and release one region of @p as. */
    void unmapRegion(AddressSpace &as, Region &region);

    /** The shared-page syscall stub: argument/reply ping-pong. */
    void syscallRoundTrip(Task &task);

    /** Run @p n word loads/stores at @p va in @p space on @p c. */
    void spaceStoreWords(Cpu &c, SpaceId space, VirtAddr va,
                         std::uint32_t n, std::uint32_t seed);
    void spaceLoadWords(Cpu &c, SpaceId space, VirtAddr va,
                        std::uint32_t n);
};

} // namespace vic

#endif // VIC_OS_KERNEL_HH
