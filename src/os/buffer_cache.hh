/**
 * @file
 * Unix-server buffer cache with write-behind.
 *
 * File data is staged in page-sized buffers mapped in the server's
 * address space. Buffers fill from the disk by DMA (a DMA-write into
 * memory, which requires the surrounding consistency work) and are
 * written back by DMA (a DMA-read from memory, which requires dirty
 * cache data to be flushed first). The write-behind policy delays the
 * write-back of dirty buffers, which — as the paper observes in
 * Section 5 — lets dirty cache lines drain naturally so the eventual
 * DMA-read flush finds little left to do.
 */

#ifndef VIC_OS_BUFFER_CACHE_HH
#define VIC_OS_BUFFER_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "os/os_params.hh"
#include "os/vm_object.hh"

namespace vic
{

class Kernel;

class BufferCache
{
  public:
    BufferCache(Kernel &k, const OsParams &os_params);

    /** Reference to a buffer holding one file block. */
    struct BufferRef
    {
        FrameId frame;
        VirtAddr kva;  ///< server-space address of the buffer
    };

    /**
     * Get the buffer for (@p file, @p block), filling it from disk if
     * necessary. @p whole_block_write skips the disk read when the
     * caller will overwrite the entire block.
     */
    BufferRef getBlock(FileId file, std::uint64_t block, bool for_write,
                       bool whole_block_write);

    /** Flush every dirty buffer to disk. */
    void sync();

    /** Flush oldest dirty buffers until at most the write-behind
     *  threshold remain dirty. */
    void writeBehind();

    /** Drop all buffers of @p file (dirty data is discarded — the file
     *  is being deleted). */
    void invalidateFile(FileId file);

    /** Dirty buffer count (tests). */
    std::uint32_t dirtyCount() const;

  private:
    struct Slot
    {
        bool valid = false;
        bool dirty = false;
        FileId file = invalidFile;
        std::uint64_t block = 0;
        FrameId frame = 0;
        bool frameAllocated = false;
        bool recycled = false;
        std::uint64_t lastUse = 0;
        std::uint64_t dirtiedAt = 0;
        /** Region backing in the server space, so a mapping broken for
         *  consistency reasons can always be re-faulted. */
        std::shared_ptr<VmObject> object;
    };

    Kernel &kernel;
    OsParams params;
    std::vector<Slot> slots;
    std::uint64_t useTick = 0;

    Counter &statHits;
    Counter &statMisses;
    Counter &statWriteBacks;

    VirtAddr slotKva(std::uint32_t slot) const;

    /** Find the slot caching (file, block); -1 if absent. */
    int findSlot(FileId file, std::uint64_t block) const;

    /** Pick a victim slot (invalid first, else LRU), flushing it if
     *  dirty. */
    std::uint32_t reclaimSlot();

    /** Swap the slot's page for a fresh one from the free list (page
     *  churn, as in the original page-based buffer cache). */
    void recycleSlotFrame(std::uint32_t slot);

    /** Fill @p slot with (file, block) from disk (or zeros). */
    void fillSlot(std::uint32_t slot, FileId file, std::uint64_t block,
                  bool whole_block_write);

    /** Write @p slot's data back to disk. */
    void flushSlot(std::uint32_t slot);

    /** Ensure the slot has a frame and a server mapping. */
    void ensureSlotBacking(std::uint32_t slot);
};

} // namespace vic

#endif // VIC_OS_BUFFER_CACHE_HH
