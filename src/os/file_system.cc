#include "os/file_system.hh"

#include "common/logging.hh"

namespace vic
{

FileSystem::FileSystem(StatSet &stat_set)
    : statCreates(stat_set.counter("fs.creates")),
      statDeletes(stat_set.counter("fs.deletes"))
{
}

FileSystem::File &
FileSystem::get(FileId file)
{
    vic_assert(file < files.size() && files[file].live,
               "bad file id %u", file);
    return files[file];
}

const FileSystem::File &
FileSystem::get(FileId file) const
{
    vic_assert(file < files.size() && files[file].live,
               "bad file id %u", file);
    return files[file];
}

FileId
FileSystem::create(const std::string &name)
{
    vic_assert(byName.find(name) == byName.end(),
               "file '%s' already exists", name.c_str());
    ++statCreates;
    const FileId id = static_cast<FileId>(files.size());
    files.push_back(File{name, 0, {}, true});
    byName.emplace(name, id);
    return id;
}

std::optional<FileId>
FileSystem::lookup(const std::string &name) const
{
    auto it = byName.find(name);
    if (it == byName.end())
        return std::nullopt;
    return it->second;
}

void
FileSystem::remove(FileId file)
{
    File &f = get(file);
    ++statDeletes;
    for (const auto &b : f.blocks) {
        if (b)
            freeDiskBlocks.push_back(*b);
    }
    byName.erase(f.name);
    f.live = false;
    f.blocks.clear();
    f.sizeBytes = 0;
}

bool
FileSystem::exists(FileId file) const
{
    return file < files.size() && files[file].live;
}

std::uint64_t
FileSystem::sizeBytes(FileId file) const
{
    return get(file).sizeBytes;
}

void
FileSystem::extendTo(FileId file, std::uint64_t size_bytes)
{
    File &f = get(file);
    if (size_bytes > f.sizeBytes)
        f.sizeBytes = size_bytes;
}

std::uint64_t
FileSystem::numBlocks(FileId file, std::uint32_t block_bytes) const
{
    return (get(file).sizeBytes + block_bytes - 1) / block_bytes;
}

bool
FileSystem::hasDiskBlock(FileId file, std::uint64_t block) const
{
    const File &f = get(file);
    return block < f.blocks.size() && f.blocks[block].has_value();
}

std::uint64_t
FileSystem::diskBlockFor(FileId file, std::uint64_t block)
{
    File &f = get(file);
    if (block >= f.blocks.size())
        f.blocks.resize(block + 1);
    if (!f.blocks[block]) {
        if (!freeDiskBlocks.empty()) {
            f.blocks[block] = freeDiskBlocks.back();
            freeDiskBlocks.pop_back();
        } else {
            f.blocks[block] = nextDiskBlock++;
        }
    }
    return *f.blocks[block];
}

std::optional<std::uint64_t>
FileSystem::diskBlockIfAny(FileId file, std::uint64_t block) const
{
    const File &f = get(file);
    if (block >= f.blocks.size())
        return std::nullopt;
    return f.blocks[block];
}

} // namespace vic
