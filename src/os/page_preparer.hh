/**
 * @file
 * Page preparation: zero-fill and copy (Section 4.2, "Preparing new
 * pages with copy and zero-fill").
 *
 * The machine-independent VM layer prepares a new page's contents
 * through a temporary kernel mapping. Two policy-controlled
 * optimisations live here:
 *
 *  - aligned prepare (config D): the kernel window is chosen to align
 *    with the page's ultimate mapping, so the dirty data left by the
 *    preparation is already in the right cache page when the user
 *    touches it;
 *  - the enter() hints will_overwrite / need_data (configs F and E):
 *    preparation overwrites the whole page, so the stale target cache
 *    page needs no purge, and the frame's previous contents are dead,
 *    so a dirty previous cache page needs no flush.
 */

#ifndef VIC_OS_PAGE_PREPARER_HH
#define VIC_OS_PAGE_PREPARER_HH

#include <cstdint>
#include <optional>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/pmap.hh"
#include "machine/cpu.hh"
#include "os/os_params.hh"

namespace vic
{

class PagePreparer
{
  public:
    PagePreparer(Cpu &c, Pmap &p, const OsParams &os_params);

    /** Fill @p frame with zeros. @p ultimate_va is the address the
     *  page will eventually be mapped at, if known. */
    void zeroPage(FrameId frame, std::optional<VirtAddr> ultimate_va);

    /** Copy @p src into @p dest. */
    void copyPage(FrameId dest, FrameId src,
                  std::optional<VirtAddr> ultimate_va);

  private:
    Cpu &cpu;
    Pmap &pmap;
    OsParams params;

    Counter &statZeroed;
    Counter &statCopied;

    /** Kernel window for the destination page. */
    VirtAddr destWindow(std::optional<VirtAddr> ultimate_va) const;

    /** Kernel window for the copy source. */
    VirtAddr srcWindow(FrameId src) const;
};

} // namespace vic

#endif // VIC_OS_PAGE_PREPARER_HH
