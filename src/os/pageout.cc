#include "os/pageout.hh"

#include "common/logging.hh"
#include "os/kernel.hh"

namespace vic
{

PageoutDaemon::PageoutDaemon(Kernel &k)
    : kernel(k),
      statPageouts(k.machine().stats().counter("os.pageouts")),
      statTextDrops(k.machine().stats().counter("os.text_drops")),
      statSwapWrites(k.machine().stats().counter("os.swap_writes"))
{
}

void
PageoutDaemon::registerPageable(const std::shared_ptr<VmObject> &object,
                                std::uint64_t page, FrameId frame)
{
    fifo.push_back(Candidate{object, page, frame});
}

void
PageoutDaemon::wire(FrameId frame)
{
    wired.insert(frame);
}

void
PageoutDaemon::unwire(FrameId frame)
{
    wired.erase(frame);
}

std::uint64_t
PageoutDaemon::allocSwapBlock()
{
    if (!freeSwap.empty()) {
        std::uint64_t b = freeSwap.back();
        freeSwap.pop_back();
        return b;
    }
    return nextSwap++;
}

void
PageoutDaemon::freeSwapBlock(std::uint64_t block)
{
    vic_assert(block >= swapBlockBase, "freeing non-swap block");
    freeSwap.push_back(block);
}

void
PageoutDaemon::releaseSwap(VmObject &object)
{
    for (std::uint64_t b : object.swapBlocks())
        freeSwapBlock(b);
    for (std::uint64_t p = 0; p < object.numPages(); ++p)
        object.clearSwapBlock(p);
}

bool
PageoutDaemon::pageOut(const Candidate &c)
{
    std::shared_ptr<VmObject> obj = c.object.lock();
    if (!obj)
        return false;  // the object died; the frame was freed already
    auto resident = obj->frameAt(c.page);
    if (!resident || *resident != c.frame)
        return false;  // reused or already evicted
    if (wired.count(c.frame))
        return false;  // pinned by an in-progress operation

    Machine &m = kernel.machine();
    Pmap &pmap = kernel.pmap();

    // Evict every translation so no access can race the transfer.
    for (const SpaceVa &va : pmap.mappingsOf(c.frame))
        pmap.remove(va);
    m.yieldPoint("pageout.unmapped");

    if (obj->backing() == VmObject::Backing::File) {
        // Text and mapped-file pages are clean copies of file data:
        // drop them; a refault re-copies from the buffer cache.
        ++statTextDrops;
    } else {
        // Anonymous page: write to swap. The DMA-read consistency
        // step flushes whatever dirty cache data the page still has —
        // strictly BEFORE the first beat of the transfer can run (the
        // interleaving checker, src/mc, explores exactly this window).
        // The frame is wired while beats are pending so nothing
        // recycles it mid-transfer.
        const std::uint64_t block = allocSwapBlock();
        pmap.dmaRead(c.frame, true);
        wire(c.frame);
        m.disk().writeBlockAsync(block, m.frameAddr(c.frame));
        m.drainDma("pageout.swap-out");
        unwire(c.frame);
        obj->setSwapBlock(c.page, block);
        ++statSwapWrites;
    }

    obj->clearFrame(c.page);
    kernel.freeFrame(c.frame);
    ++statPageouts;
    VIC_EVLOG(m.events(),
              format("pageout frame=%llu (%s)",
                     (unsigned long long)c.frame,
                     obj->backing() == VmObject::Backing::File
                         ? "dropped"
                         : "swapped"));
    return true;
}

void
PageoutDaemon::reclaim()
{
    if (reclaiming)
        return;
    reclaiming = true;
    const std::uint64_t target = kernel.params().pageoutHighWater;
    while (kernel.freeFrames() < target && !fifo.empty()) {
        Candidate c = fifo.front();
        fifo.pop_front();
        pageOut(c);
    }
    reclaiming = false;
}

} // namespace vic
