#include "os/address_space.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vic
{

bool
Region::contains(VirtAddr va, std::uint32_t page_bytes) const
{
    return va.value >= start.value &&
           va.value < start.value + std::uint64_t(numPages) * page_bytes;
}

std::uint32_t
Region::pageIndexOf(VirtAddr va, std::uint32_t page_bytes) const
{
    vic_assert(contains(va, page_bytes), "va outside region");
    return static_cast<std::uint32_t>((va.value - start.value) /
                                      page_bytes);
}

AddressSpace::AddressSpace(SpaceId space_id, std::uint32_t page_bytes,
                           std::uint32_t num_colours,
                           std::uint64_t dynamic_base)
    : spaceId(space_id), pageBytes(page_bytes), colours(num_colours),
      bump(dynamic_base)
{
    vic_assert(dynamic_base % page_bytes == 0,
               "dynamic base not page aligned");
}

Region *
AddressSpace::regionFor(VirtAddr va)
{
    for (auto &r : regionList) {
        if (r.contains(va, pageBytes))
            return &r;
    }
    return nullptr;
}

const Region *
AddressSpace::regionFor(VirtAddr va) const
{
    for (const auto &r : regionList) {
        if (r.contains(va, pageBytes))
            return &r;
    }
    return nullptr;
}

VirtAddr
AddressSpace::allocateVa(std::uint32_t pages,
                         std::optional<CachePageId> colour)
{
    std::uint64_t page_no = bump / pageBytes;
    if (colour) {
        vic_assert(*colour < colours, "colour %u out of range", *colour);
        const std::uint64_t cur = page_no % colours;
        page_no += (*colour + colours - cur) % colours;
    }
    const VirtAddr va(page_no * pageBytes);
    bump = (page_no + pages) * pageBytes;
    return va;
}

Region &
AddressSpace::createRegion(VirtAddr start, std::uint32_t pages,
                           Protection prot, Protection max_prot,
                           std::shared_ptr<VmObject> object,
                           std::uint64_t object_page_offset,
                           bool copy_on_write)
{
    vic_assert(start.value % pageBytes == 0, "region not page aligned");
    vic_assert(pages > 0, "empty region");
    vic_assert(object != nullptr, "region without object");
    vic_assert(object_page_offset + pages <= object->numPages(),
               "region exceeds object");
    for (std::uint32_t i = 0; i < pages; ++i) {
        vic_assert(regionFor(start.plus(std::uint64_t(i) * pageBytes)) ==
                       nullptr,
                   "overlapping region at %llx",
                   (unsigned long long)start.value);
    }

    Region r;
    r.start = start;
    r.numPages = pages;
    r.prot = prot;
    r.maxProt = max_prot;
    r.copyOnWrite = copy_on_write;
    r.object = std::move(object);
    r.objectPageOffset = object_page_offset;
    r.privatePages.resize(pages);
    regionList.push_back(std::move(r));
    return regionList.back();
}

Region
AddressSpace::removeRegion(VirtAddr start)
{
    auto it = std::find_if(regionList.begin(), regionList.end(),
                           [&](const Region &r) {
                               return r.start == start;
                           });
    vic_assert(it != regionList.end(), "no region at %llx",
               (unsigned long long)start.value);
    Region r = std::move(*it);
    regionList.erase(it);
    return r;
}

bool
AddressSpace::claimFirstAccess(VirtAddr page_va)
{
    return touchedPages.insert(page_va.value).second;
}

} // namespace vic
