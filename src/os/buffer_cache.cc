#include "os/buffer_cache.hh"

#include "common/logging.hh"
#include "os/kernel.hh"

namespace vic
{

BufferCache::BufferCache(Kernel &k, const OsParams &os_params)
    : kernel(k), params(os_params), slots(os_params.bufferCacheSlots),
      statHits(k.machine().stats().counter("bcache.hits")),
      statMisses(k.machine().stats().counter("bcache.misses")),
      statWriteBacks(k.machine().stats().counter("bcache.write_backs"))
{
}

VirtAddr
BufferCache::slotKva(std::uint32_t slot) const
{
    return VirtAddr(params.bufferCacheBase +
                    std::uint64_t(slot) * kernel.machine().pageBytes());
}

int
BufferCache::findSlot(FileId file, std::uint64_t block) const
{
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        if (slots[i].valid && slots[i].file == file &&
            slots[i].block == block)
            return static_cast<int>(i);
    }
    return -1;
}

void
BufferCache::ensureSlotBacking(std::uint32_t slot)
{
    Slot &s = slots[slot];
    if (s.frameAllocated)
        return;
    const VirtAddr kva = slotKva(slot);
    s.frame = kernel.allocFrame(kernel.pmap().dColourOf(kva));
    s.frameAllocated = true;
    // Buffers live in a real server region so that accesses fault in
    // their mapping on demand — and can re-fault it if the consistency
    // policy ever breaks it (e.g. when a transient kernel copy mapping
    // aliases the buffer frame under an eager policy).
    s.object = std::make_shared<VmObject>(VmObject::anonymous(1));
    s.object->setFrame(0, s.frame);
    kernel.serverAddressSpace().createRegion(
        kva, 1, Protection::readWrite(), Protection::readWrite(),
        s.object, 0, false);
}

void
BufferCache::recycleSlotFrame(std::uint32_t slot)
{
    // A refilled buffer gets a fresh page from the kernel's free list
    // and returns its old one, as the original server's page-based
    // buffer cache did. Recycled pages arrive with whatever cache
    // residue their previous life left (under lazy policies), so the
    // fill's DMA-write exercises the dirty-page purge path.
    Slot &s = slots[slot];
    if (!s.recycled) {
        // First fill after allocation: the frame is already fresh.
        s.recycled = true;
        return;
    }
    const VirtAddr kva = slotKva(slot);
    kernel.pmap().remove(SpaceVa(OsParams::serverSpace, kva));
    s.object->clearFrame(0);
    kernel.freeFrame(s.frame);
    s.frame = kernel.allocFrame(kernel.pmap().dColourOf(kva));
    s.object->setFrame(0, s.frame);
    // Re-establish the mapping now: the transfer that follows must see
    // the buffer as mapped so the DMA consistency step can protect (or
    // purge) the cached copies the mapping implies. The recycled
    // frame's previous contents are dead and the fill overwrites the
    // whole block, so the semantic hints apply.
    Pmap::EnterHints hints;
    hints.willOverwrite = true;
    hints.needData = false;
    kernel.pmap().enter(SpaceVa(OsParams::serverSpace, kva), s.frame,
                        Protection::readWrite(), AccessType::Load,
                        hints);
}

void
BufferCache::flushSlot(std::uint32_t slot)
{
    Slot &s = slots[slot];
    vic_assert(s.valid && s.dirty, "flush of clean slot");
    ++statWriteBacks;
    // The device is about to read the frame: dirty cache data must be
    // flushed to memory first (the DMA-read consistency step), before
    // the transfer's first beat — not merely before its completion.
    // The frame stays wired while beats are pending so pageout cannot
    // recycle a buffer mid-write-back.
    kernel.pmap().dmaRead(s.frame, true);
    const std::uint64_t disk_block =
        kernel.fs().diskBlockFor(s.file, s.block);
    kernel.pageout().wire(s.frame);
    kernel.machine().disk().writeBlockAsync(
        disk_block, kernel.machine().frameAddr(s.frame));
    kernel.machine().drainDma("bufcache.write-back");
    kernel.pageout().unwire(s.frame);
    s.dirty = false;
}

void
BufferCache::fillSlot(std::uint32_t slot, FileId file,
                      std::uint64_t block, bool whole_block_write)
{
    Slot &s = slots[slot];
    const auto disk_block = kernel.fs().diskBlockIfAny(file, block);

    if (disk_block && !whole_block_write) {
        // The device is about to overwrite the frame: cached copies
        // must not shadow or clobber it (the DMA-write consistency
        // step, ordered before the first beat).
        kernel.pmap().dmaWrite(s.frame);
        kernel.pageout().wire(s.frame);
        kernel.machine().disk().readBlockAsync(
            *disk_block, kernel.machine().frameAddr(s.frame));
        kernel.machine().drainDma("bufcache.fill");
        kernel.pageout().unwire(s.frame);
    } else if (!disk_block && !whole_block_write) {
        // A block that has never been written reads as zeros; the
        // server zeroes the buffer through its mapping.
        Cpu &cpu = kernel.cpu();
        const SpaceId saved = cpu.space();
        cpu.setSpace(OsParams::serverSpace);
        const VirtAddr kva = slotKva(slot);
        for (std::uint32_t off = 0; off < kernel.machine().pageBytes();
             off += 4)
            cpu.store(kva.plus(off), 0);
        cpu.setSpace(saved);
    }
    // whole_block_write: the caller overwrites every byte, no fill.

    s.valid = true;
    s.file = file;
    s.block = block;
    s.dirty = false;
}

std::uint32_t
BufferCache::reclaimSlot()
{
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t(0);
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].valid)
            return i;
        if (slots[i].lastUse < oldest) {
            oldest = slots[i].lastUse;
            victim = i;
        }
    }
    if (slots[victim].dirty)
        flushSlot(victim);
    slots[victim].valid = false;
    return victim;
}

BufferCache::BufferRef
BufferCache::getBlock(FileId file, std::uint64_t block, bool for_write,
                      bool whole_block_write)
{
    int idx = findSlot(file, block);
    if (idx < 0) {
        ++statMisses;
        const std::uint32_t slot = reclaimSlot();
        ensureSlotBacking(slot);
        recycleSlotFrame(slot);
        fillSlot(slot, file, block, for_write && whole_block_write);
        idx = static_cast<int>(slot);
    } else {
        ++statHits;
    }
    Slot &s = slots[static_cast<std::uint32_t>(idx)];
    s.lastUse = ++useTick;
    if (for_write) {
        if (!s.dirty)
            s.dirtiedAt = useTick;
        s.dirty = true;
    }
    return BufferRef{s.frame, slotKva(static_cast<std::uint32_t>(idx))};
}

void
BufferCache::sync()
{
    for (std::uint32_t i = 0; i < slots.size(); ++i) {
        if (slots[i].valid && slots[i].dirty)
            flushSlot(i);
    }
}

void
BufferCache::writeBehind()
{
    while (dirtyCount() > params.writeBehindThreshold) {
        std::uint32_t victim = 0;
        std::uint64_t oldest = ~std::uint64_t(0);
        for (std::uint32_t i = 0; i < slots.size(); ++i) {
            if (slots[i].valid && slots[i].dirty &&
                slots[i].dirtiedAt < oldest) {
                oldest = slots[i].dirtiedAt;
                victim = i;
            }
        }
        flushSlot(victim);
    }
}

void
BufferCache::invalidateFile(FileId file)
{
    for (auto &s : slots) {
        if (s.valid && s.file == file) {
            s.valid = false;
            s.dirty = false;
        }
    }
}

std::uint32_t
BufferCache::dirtyCount() const
{
    std::uint32_t n = 0;
    for (const auto &s : slots)
        n += (s.valid && s.dirty) ? 1 : 0;
    return n;
}

} // namespace vic
