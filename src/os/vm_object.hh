/**
 * @file
 * Memory objects: the pager-backed sources of page contents, as in
 * Mach's VM design. A region of an address space maps a range of an
 * object; objects may be shared between regions (shared memory,
 * shared program text) — which is exactly how aliases arise.
 */

#ifndef VIC_OS_VM_OBJECT_HH
#define VIC_OS_VM_OBJECT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace vic
{

/** File identifier within the simulated file system. */
using FileId = std::uint32_t;
inline constexpr FileId invalidFile = ~FileId(0);

class VmObject
{
  public:
    enum class Backing : std::uint8_t
    {
        Zero,  ///< demand zero-fill
        File,  ///< paged in from a file (program text, mapped files)
    };

    /** Anonymous zero-filled object of @p num_pages pages. */
    static VmObject anonymous(std::uint64_t num_pages);

    /** File-backed object covering @p num_pages pages of @p file. */
    static VmObject fileBacked(FileId file, std::uint64_t num_pages);

    Backing backing() const { return kind; }
    FileId file() const { return fileId; }
    std::uint64_t numPages() const { return frames.size(); }

    /** Resident frame for object page @p page, if any. */
    std::optional<FrameId> frameAt(std::uint64_t page) const;

    /** Install the resident frame for @p page. */
    void setFrame(std::uint64_t page, FrameId frame);

    /** Drop residency for @p page (frame ownership passes to the
     *  caller). */
    void clearFrame(std::uint64_t page);

    /** All resident frames (for teardown). */
    std::vector<FrameId> residentFrames() const;

    /** Swap block holding @p page's contents while non-resident. */
    std::optional<std::uint64_t> swapBlockAt(std::uint64_t page) const;

    /** Record that @p page was paged out to @p block. */
    void setSwapBlock(std::uint64_t page, std::uint64_t block);

    /** Forget @p page's swap block (ownership passes to caller). */
    void clearSwapBlock(std::uint64_t page);

    /** All assigned swap blocks (for teardown). */
    std::vector<std::uint64_t> swapBlocks() const;

  private:
    VmObject(Backing backing_kind, FileId backing_file,
             std::uint64_t num_pages);

    Backing kind;
    FileId fileId;
    std::vector<std::optional<FrameId>> frames;
    std::vector<std::optional<std::uint64_t>> swap;
};

} // namespace vic

#endif // VIC_OS_VM_OBJECT_HH
