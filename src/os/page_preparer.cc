#include "os/page_preparer.hh"

#include "common/logging.hh"

namespace vic
{

namespace
{

/** RAII address-space switch for kernel-mode work. */
class SpaceGuard
{
  public:
    SpaceGuard(Cpu &c, SpaceId space) : cpu(c), saved(c.space())
    { cpu.setSpace(space); }
    ~SpaceGuard() { cpu.setSpace(saved); }

  private:
    Cpu &cpu;
    SpaceId saved;
};

} // anonymous namespace

PagePreparer::PagePreparer(Cpu &c, Pmap &p, const OsParams &os_params)
    : cpu(c), pmap(p), params(os_params),
      statZeroed(c.machine().stats().counter("os.pages_zeroed")),
      statCopied(c.machine().stats().counter("os.pages_copied"))
{
}

VirtAddr
PagePreparer::destWindow(std::optional<VirtAddr> ultimate_va) const
{
    if (pmap.config().alignedPrepare && ultimate_va) {
        const CachePageId colour = pmap.dColourOf(*ultimate_va);
        return VirtAddr(params.alignedPrepareBase +
                        std::uint64_t(colour) *
                            cpu.machine().pageBytes());
    }
    return VirtAddr(params.prepareDestBase);
}

VirtAddr
PagePreparer::srcWindow(FrameId src) const
{
    // Reading the source through an address aligned with wherever its
    // data currently sits avoids flushing it out of the cache first.
    if (pmap.config().alignedPrepare) {
        if (auto colour = pmap.preferredColour(src)) {
            return VirtAddr(params.copySrcBase +
                            std::uint64_t(*colour) *
                                cpu.machine().pageBytes());
        }
    }
    return VirtAddr(params.copySrcBase);
}

void
PagePreparer::zeroPage(FrameId frame, std::optional<VirtAddr> ultimate_va)
{
    ++statZeroed;
    const std::uint32_t page_bytes = cpu.machine().pageBytes();
    const VirtAddr kva = destWindow(ultimate_va);

    SpaceGuard guard(cpu, OsParams::kernelSpace);
    Pmap::EnterHints hints;
    hints.willOverwrite = true;  // the whole page is written below
    hints.needData = false;      // the frame's old contents are dead
    pmap.enter(SpaceVa(OsParams::kernelSpace, kva), frame,
               Protection::readWrite(), AccessType::Store, hints);
    for (std::uint32_t off = 0; off < page_bytes; off += 4)
        cpu.store(kva.plus(off), 0);
    pmap.remove(SpaceVa(OsParams::kernelSpace, kva));
}

void
PagePreparer::copyPage(FrameId dest, FrameId src,
                       std::optional<VirtAddr> ultimate_va)
{
    vic_assert(dest != src, "copyPage onto itself");
    ++statCopied;
    const std::uint32_t page_bytes = cpu.machine().pageBytes();
    const VirtAddr dst_kva = destWindow(ultimate_va);
    const VirtAddr src_kva = srcWindow(src);

    SpaceGuard guard(cpu, OsParams::kernelSpace);
    pmap.enter(SpaceVa(OsParams::kernelSpace, src_kva), src,
               Protection::readOnly(), AccessType::Load, {});
    Pmap::EnterHints hints;
    hints.willOverwrite = true;
    hints.needData = false;
    pmap.enter(SpaceVa(OsParams::kernelSpace, dst_kva), dest,
               Protection::readWrite(), AccessType::Store, hints);
    for (std::uint32_t off = 0; off < page_bytes; off += 4)
        cpu.store(dst_kva.plus(off), cpu.load(src_kva.plus(off)));
    pmap.remove(SpaceVa(OsParams::kernelSpace, src_kva));
    pmap.remove(SpaceVa(OsParams::kernelSpace, dst_kva));
}

} // namespace vic
