#include "os/kernel.hh"

#include "common/logging.hh"

namespace vic
{

namespace
{

/** RAII address-space switch. */
class SpaceGuard
{
  public:
    SpaceGuard(Cpu &c, SpaceId space) : cpu(c), saved(c.space())
    { cpu.setSpace(space); }
    ~SpaceGuard() { cpu.setSpace(saved); }

  private:
    Cpu &cpu;
    SpaceId saved;
};

} // anonymous namespace

Kernel::Kernel(Machine &m, const PolicyConfig &policy,
               const OsParams &os_params)
    : mach(m), osParams(os_params), pmapImpl(Pmap::create(m, policy)),
      framePool(policy.freeListOrg,
                m.dcache().geometry().numColours()),
      fileSystem(m.stats()),
      statMappingFaults(m.stats().counter("os.mapping_faults")),
      statConsistencyFaults(m.stats().counter("os.consistency_faults")),
      statCowFaults(m.stats().counter("os.cow_faults")),
      statDToICopies(m.stats().counter("os.d_to_i_copies")),
      statIpcTransfers(m.stats().counter("os.ipc_transfers")),
      statSyscalls(m.stats().counter("os.syscalls")),
      statPageins(m.stats().counter("os.pageins"))
{
    for (std::uint32_t c = 0; c < m.numCpus(); ++c)
        cpus.push_back(std::make_unique<Cpu>(m, c));

    bufCache = std::make_unique<BufferCache>(*this, osParams);
    pagePreparer =
        std::make_unique<PagePreparer>(*cpus[0], *pmapImpl, osParams);
    pageoutDaemon = std::make_unique<PageoutDaemon>(*this);
    serverAs = std::make_unique<AddressSpace>(
        OsParams::serverSpace, mach.pageBytes(),
        mach.dcache().geometry().numColours(),
        osParams.serverDynamicBase);

    for (FrameId f = 0; f < mach.params().numFrames; ++f)
        framePool.free(f, std::nullopt);

    for (auto &c : cpus) {
        c->setFaultHandler(
            [this](const Fault &fault) { return handleFault(fault); });
    }
}

Kernel::~Kernel() = default;

Cpu &
Kernel::taskCpu(TaskId task)
{
    return *cpus[getTask(task).cpu];
}

Kernel::Task &
Kernel::getTask(TaskId task)
{
    vic_assert(task < tasks.size() && tasks[task].live,
               "bad task id %u", task);
    return tasks[task];
}

AddressSpace &
Kernel::addressSpace(TaskId task)
{
    return *getTask(task).as;
}

AddressSpace &
Kernel::spaceFor(SpaceId space)
{
    if (space == OsParams::serverSpace)
        return *serverAs;
    for (auto &t : tasks) {
        if (t.live && t.space == space)
            return *t.as;
    }
    vic_panic("no address space for space id %u", space);
}

// ----------------------------------------------------------------------
// Frames
// ----------------------------------------------------------------------

FrameId
Kernel::allocFrame(std::optional<CachePageId> wanted_colour)
{
    if (osParams.enablePageout && pageoutDaemon &&
        framePool.size() < osParams.pageoutLowWater)
        pageoutDaemon->reclaim();

    auto alloc = framePool.allocate(wanted_colour);
    if (!alloc)
        vic_fatal("out of physical memory (%llu frames configured)",
                  (unsigned long long)mach.params().numFrames);
    return alloc->frame;
}

void
Kernel::freeFrame(FrameId frame)
{
    pmapImpl->frameFreed(frame);
    framePool.free(frame, pmapImpl->preferredColour(frame));
}

// ----------------------------------------------------------------------
// Tasks
// ----------------------------------------------------------------------

TaskId
Kernel::createTask()
{
    const TaskId id = static_cast<TaskId>(tasks.size());
    Task t;
    t.id = id;
    t.space = nextSpace++;
    t.cpu = id % mach.numCpus();
    t.as = std::make_unique<AddressSpace>(
        t.space, mach.pageBytes(), mach.dcache().geometry().numColours(),
        osParams.taskDynamicBase);
    t.live = true;

    // The Unix-server shared syscall pages: one object aliased into
    // the task's and the server's address spaces. The "old" system
    // placed both at fixed, non-aligning addresses; the "new" one lets
    // the kernel pick aligning ones (Section 4.2).
    const std::uint32_t n = osParams.sharedPagesPerTask;
    t.sharedObj = std::make_shared<VmObject>(VmObject::anonymous(n));
    if (policy().alignSharedPages) {
        t.sharedTaskVa = t.as->allocateVa(n, std::nullopt);
        t.sharedServerVa = serverAs->allocateVa(
            n, pmapImpl->dColourOf(t.sharedTaskVa));
    } else {
        t.sharedTaskVa = VirtAddr(osParams.taskSharedBase);
        t.sharedServerVa = VirtAddr(
            osParams.serverSharedBase +
            std::uint64_t(id) * n * mach.pageBytes());
    }
    t.as->createRegion(t.sharedTaskVa, n, Protection::readWrite(),
                       Protection::readWrite(), t.sharedObj, 0, false);
    serverAs->createRegion(t.sharedServerVa, n, Protection::readWrite(),
                           Protection::readWrite(), t.sharedObj, 0,
                           false);

    tasks.push_back(std::move(t));
    return id;
}

void
Kernel::unmapRegion(AddressSpace &as, Region &region)
{
    const std::uint32_t page_bytes = mach.pageBytes();
    for (std::uint32_t i = 0; i < region.numPages; ++i) {
        const VirtAddr va =
            region.start.plus(std::uint64_t(i) * page_bytes);
        pmapImpl->remove(SpaceVa(as.id(), va));
        if (region.privatePages[i]) {
            freeFrame(*region.privatePages[i]);
            region.privatePages[i].reset();
        }
    }
    // Free the object's resident frames and swap blocks if this
    // region held the last reference to it.
    if (region.object.use_count() == 1) {
        for (FrameId f : region.object->residentFrames())
            freeFrame(f);
        pageoutDaemon->releaseSwap(*region.object);
    }
    region.object.reset();
}

void
Kernel::destroyTask(TaskId task)
{
    Task &t = getTask(task);

    // Drop the kernel's own reference to the shared object first so
    // the last region unmap below can release its frames.
    t.sharedObj.reset();

    Region server_region = serverAs->removeRegion(t.sharedServerVa);
    unmapRegion(*serverAs, server_region);

    while (!t.as->regions().empty()) {
        Region r = t.as->removeRegion(t.as->regions().front().start);
        unmapRegion(*t.as, r);
    }

    mach.tlbShootdownSpace(t.space);
    t.as.reset();
    t.live = false;
}

// ----------------------------------------------------------------------
// Virtual memory
// ----------------------------------------------------------------------

VirtAddr
Kernel::vmAllocate(TaskId task, std::uint32_t pages,
                   std::optional<VirtAddr> fixed)
{
    Task &t = getTask(task);
    auto obj = std::make_shared<VmObject>(VmObject::anonymous(pages));
    const VirtAddr va =
        fixed ? *fixed : t.as->allocateVa(pages, std::nullopt);
    t.as->createRegion(va, pages, Protection::readWrite(),
                       Protection::readWrite(), std::move(obj), 0,
                       false);
    return va;
}

void
Kernel::vmDeallocate(TaskId task, VirtAddr start)
{
    Task &t = getTask(task);
    Region r = t.as->removeRegion(start);
    unmapRegion(*t.as, r);
}

VirtAddr
Kernel::vmMapShared(TaskId task, std::shared_ptr<VmObject> object,
                    Protection prot, std::optional<VirtAddr> fixed)
{
    Task &t = getTask(task);
    const std::uint32_t pages =
        static_cast<std::uint32_t>(object->numPages());
    const VirtAddr va =
        fixed ? *fixed : t.as->allocateVa(pages, std::nullopt);
    t.as->createRegion(va, pages, prot, prot, std::move(object), 0,
                       false);
    return va;
}

VirtAddr
Kernel::vmMapCow(TaskId task, std::shared_ptr<VmObject> object,
                 std::optional<VirtAddr> fixed)
{
    Task &t = getTask(task);
    const std::uint32_t pages =
        static_cast<std::uint32_t>(object->numPages());
    const VirtAddr va =
        fixed ? *fixed : t.as->allocateVa(pages, std::nullopt);
    t.as->createRegion(va, pages, Protection::readWrite(),
                       Protection::readWrite(), std::move(object), 0,
                       true);
    return va;
}

void
Kernel::vmProtect(TaskId task, VirtAddr start, Protection prot)
{
    Task &t = getTask(task);
    Region *r = t.as->regionFor(start);
    vic_assert(r != nullptr, "vmProtect: no region at %llx",
               (unsigned long long)start.value);
    r->prot = prot.intersect(r->maxProt);

    // Re-protect whatever is currently mapped; non-resident pages pick
    // the new protection up at their next fault.
    const std::uint32_t page_bytes = mach.pageBytes();
    for (std::uint32_t i = 0; i < r->numPages; ++i) {
        const VirtAddr va = r->start.plus(std::uint64_t(i) * page_bytes);
        const SpaceVa key(t.space, va);
        if (mach.pageTable().lookup(key) == nullptr)
            continue;
        Protection eff = r->prot;
        if (r->copyOnWrite && !r->privatePages[i])
            eff.write = false;
        pmapImpl->protect(key, eff);
    }
}

std::shared_ptr<VmObject>
Kernel::regionObject(TaskId task, VirtAddr start)
{
    Task &t = getTask(task);
    Region *r = t.as->regionFor(start);
    vic_assert(r != nullptr, "no region at %llx",
               (unsigned long long)start.value);
    return r->object;
}

// ----------------------------------------------------------------------
// User accesses
// ----------------------------------------------------------------------

std::uint32_t
Kernel::userLoad(TaskId task, VirtAddr va)
{
    Cpu &c = taskCpu(task);
    SpaceGuard guard(c, getTask(task).space);
    return c.load(va);
}

void
Kernel::userStore(TaskId task, VirtAddr va, std::uint32_t value)
{
    Cpu &c = taskCpu(task);
    SpaceGuard guard(c, getTask(task).space);
    c.store(va, value);
}

std::uint32_t
Kernel::userExec(TaskId task, VirtAddr va)
{
    Cpu &c = taskCpu(task);
    SpaceGuard guard(c, getTask(task).space);
    return c.ifetch(va);
}

void
Kernel::userTouchPage(TaskId task, VirtAddr page_va, bool write,
                      std::uint32_t value_seed)
{
    Cpu &c = taskCpu(task);
    SpaceGuard guard(c, getTask(task).space);
    const std::uint32_t line = mach.dcache().geometry().lineBytes();
    const std::uint32_t n = mach.pageBytes() / line;
    if (write)
        c.storeRange(page_va, n, line, value_seed, line);
    else
        c.loadRange(page_va, n, line);
}

void
Kernel::userCompute(Cycles cycles)
{
    cpus[0]->compute(cycles);
}

void
Kernel::spaceStoreWords(Cpu &c, SpaceId space, VirtAddr va,
                        std::uint32_t n, std::uint32_t seed)
{
    SpaceGuard guard(c, space);
    c.storeRange(va, n, 4, seed, 1);
}

void
Kernel::spaceLoadWords(Cpu &c, SpaceId space, VirtAddr va,
                       std::uint32_t n)
{
    SpaceGuard guard(c, space);
    c.loadRange(va, n, 4);
}

// ----------------------------------------------------------------------
// Syscall stub
// ----------------------------------------------------------------------

void
Kernel::syscallRoundTrip(Task &task)
{
    ++statSyscalls;
    const std::uint32_t n = osParams.syscallArgWords;
    // Task marshals arguments into the shared page...
    Cpu &task_cpu = *cpus[task.cpu];
    Cpu &server_cpu = *cpus[0];
    spaceStoreWords(task_cpu, task.space, task.sharedTaskVa, n,
                    syscallStamp);
    syscallStamp += n;
    // ...the server reads them, then writes the reply...
    spaceLoadWords(server_cpu, OsParams::serverSpace,
                   task.sharedServerVa, n);
    spaceStoreWords(server_cpu, OsParams::serverSpace,
                    task.sharedServerVa, 2, syscallStamp);
    syscallStamp += 2;
    // ...and the task consumes the reply.
    spaceLoadWords(task_cpu, task.space, task.sharedTaskVa, 2);
}

// ----------------------------------------------------------------------
// Files
// ----------------------------------------------------------------------

FileId
Kernel::fileCreate(TaskId task, const std::string &name)
{
    syscallRoundTrip(getTask(task));
    return fileSystem.create(name);
}

FileId
Kernel::fileOpen(TaskId task, const std::string &name)
{
    syscallRoundTrip(getTask(task));
    auto id = fileSystem.lookup(name);
    vic_assert(id.has_value(), "open of missing file '%s'", name.c_str());
    return *id;
}

void
Kernel::fileDelete(TaskId task, const std::string &name)
{
    syscallRoundTrip(getTask(task));
    auto id = fileSystem.lookup(name);
    vic_assert(id.has_value(), "delete of missing file '%s'",
               name.c_str());
    bufCache->invalidateFile(*id);
    fileSystem.remove(*id);
}

void
Kernel::fileWrite(TaskId task, FileId file, std::uint64_t offset,
                  std::uint32_t bytes, std::uint32_t value_seed)
{
    vic_assert(bytes % 4 == 0 && offset % 4 == 0,
               "file I/O must be word aligned");
    Task &t = getTask(task);
    syscallRoundTrip(t);

    const std::uint32_t page_bytes = mach.pageBytes();
    std::uint64_t cur = offset;
    const std::uint64_t end = offset + bytes;
    std::uint32_t seed = value_seed;
    while (cur < end) {
        const std::uint64_t block = cur / page_bytes;
        const std::uint32_t block_off =
            static_cast<std::uint32_t>(cur % page_bytes);
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(end - cur, page_bytes - block_off));
        const std::uint32_t words = chunk / 4;
        const std::uint32_t shared_words = std::min<std::uint32_t>(
            words, page_bytes / 4);

        // Task passes the payload through the shared page; the server
        // picks it up.
        spaceStoreWords(*cpus[t.cpu], t.space, t.sharedTaskVa,
                        shared_words, seed);
        spaceLoadWords(*cpus[0], OsParams::serverSpace,
                       t.sharedServerVa, shared_words);

        // Server deposits the data in the buffer cache.
        const bool whole = block_off == 0 && chunk == page_bytes;
        BufferCache::BufferRef buf =
            bufCache->getBlock(file, block, true, whole);
        spaceStoreWords(*cpus[0], OsParams::serverSpace,
                        buf.kva.plus(block_off), words, seed);

        seed += words;
        cur += chunk;
    }
    fileSystem.extendTo(file, end);
    bufCache->writeBehind();
}

void
Kernel::fileRead(TaskId task, FileId file, std::uint64_t offset,
                 std::uint32_t bytes)
{
    vic_assert(bytes % 4 == 0 && offset % 4 == 0,
               "file I/O must be word aligned");
    Task &t = getTask(task);
    syscallRoundTrip(t);

    const std::uint32_t page_bytes = mach.pageBytes();
    std::uint64_t cur = offset;
    const std::uint64_t end = offset + bytes;
    while (cur < end) {
        const std::uint64_t block = cur / page_bytes;
        const std::uint32_t block_off =
            static_cast<std::uint32_t>(cur % page_bytes);
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(end - cur, page_bytes - block_off));
        const std::uint32_t words = chunk / 4;
        const std::uint32_t shared_words = std::min<std::uint32_t>(
            words, page_bytes / 4);

        BufferCache::BufferRef buf =
            bufCache->getBlock(file, block, false, false);
        // Server reads the file data and returns it through the shared
        // page; the task consumes it.
        spaceLoadWords(*cpus[0], OsParams::serverSpace,
                       buf.kva.plus(block_off), words);
        spaceStoreWords(*cpus[0], OsParams::serverSpace,
                        t.sharedServerVa, shared_words, syscallStamp);
        syscallStamp += shared_words;
        spaceLoadWords(*cpus[t.cpu], t.space, t.sharedTaskVa,
                       shared_words);

        cur += chunk;
    }
}

VirtAddr
Kernel::fileReadPageIpc(TaskId task, FileId file, std::uint64_t block)
{
    Task &t = getTask(task);
    syscallRoundTrip(t);

    BufferCache::BufferRef buf =
        bufCache->getBlock(file, block, false, false);

    // The kernel is free to pick the receiver's address: with the
    // alignment policy it matches the sender's (the buffer's) cache
    // colour, so the transferred page needs no consistency work.
    const std::optional<CachePageId> colour = policy().alignIpc
        ? std::optional<CachePageId>(pmapImpl->dColourOf(buf.kva))
        : std::nullopt;
    const VirtAddr dest_va = t.as->allocateVa(1, colour);

    const FrameId frame = allocFrame(pmapImpl->dColourOf(dest_va));
    pagePreparer->copyPage(frame, buf.frame, dest_va);

    auto obj = std::make_shared<VmObject>(VmObject::anonymous(1));
    obj->setFrame(0, frame);
    pageoutDaemon->registerPageable(obj, 0, frame);
    t.as->createRegion(dest_va, 1, Protection::readWrite(),
                       Protection::readWrite(), std::move(obj), 0,
                       false);
    ++statIpcTransfers;
    return dest_va;
}

void
Kernel::fileSyncAll()
{
    bufCache->sync();
}

// ----------------------------------------------------------------------
// Program text
// ----------------------------------------------------------------------

VirtAddr
Kernel::mapText(TaskId task, FileId file, std::uint32_t pages)
{
    // Text is paged in per process: when a task faults on an
    // instruction page, the file system copies the block from its
    // buffer cache into a page of the faulting address space (the
    // Section 5.1 data-to-instruction-space copy). The frames are
    // private to the task and recycled through the free list at exit.
    Task &t = getTask(task);
    auto obj =
        std::make_shared<VmObject>(VmObject::fileBacked(file, pages));
    const VirtAddr va(osParams.taskTextBase);
    t.as->createRegion(va, pages, Protection::readExecute(),
                       Protection::readExecute(), std::move(obj), 0,
                       false);
    return va;
}

void
Kernel::execText(TaskId task, std::uint32_t first_page,
                 std::uint32_t pages)
{
    Task &t = getTask(task);
    Cpu &c = *cpus[t.cpu];
    SpaceGuard guard(c, t.space);
    const std::uint32_t line = mach.icache().geometry().lineBytes();
    const std::uint32_t page_bytes = mach.pageBytes();
    for (std::uint32_t p = first_page; p < first_page + pages; ++p) {
        const VirtAddr base(osParams.taskTextBase +
                            std::uint64_t(p) * page_bytes);
        c.ifetchRange(base, page_bytes / line, line);
    }
}

// ----------------------------------------------------------------------
// IPC
// ----------------------------------------------------------------------

VirtAddr
Kernel::ipcTransferPage(TaskId from, VirtAddr src_va, TaskId to)
{
    Task &sender = getTask(from);
    Task &receiver = getTask(to);

    Region r = sender.as->removeRegion(src_va);
    vic_assert(r.numPages == 1 && !r.copyOnWrite,
               "IPC transfer needs a 1-page private region");
    pmapImpl->remove(SpaceVa(sender.space, src_va));

    // "The kernel is free to select any destination virtual address,
    // so choosing one that aligns with the source address guarantees
    // that no cache management operation is necessary." (Section 4.2)
    const std::optional<CachePageId> colour = policy().alignIpc
        ? std::optional<CachePageId>(pmapImpl->dColourOf(src_va))
        : std::nullopt;
    const VirtAddr dest_va = receiver.as->allocateVa(1, colour);
    receiver.as->createRegion(dest_va, 1, r.prot, r.maxProt, r.object,
                              r.objectPageOffset, false);
    ++statIpcTransfers;
    return dest_va;
}

VirtAddr
Kernel::ipcTransferRegion(TaskId from, VirtAddr src_start, TaskId to)
{
    Task &sender = getTask(from);
    Task &receiver = getTask(to);

    Region r = sender.as->removeRegion(src_start);
    vic_assert(!r.copyOnWrite,
               "IPC region transfer of a copy-on-write region");
    const std::uint32_t page_bytes = mach.pageBytes();
    for (std::uint32_t i = 0; i < r.numPages; ++i) {
        pmapImpl->remove(SpaceVa(
            sender.space, r.start.plus(std::uint64_t(i) * page_bytes)));
        vic_assert(!r.privatePages[i],
                   "IPC region transfer with private overlays");
    }

    const std::optional<CachePageId> colour = policy().alignIpc
        ? std::optional<CachePageId>(pmapImpl->dColourOf(src_start))
        : std::nullopt;
    const VirtAddr dest_va = receiver.as->allocateVa(r.numPages, colour);
    receiver.as->createRegion(dest_va, r.numPages, r.prot, r.maxProt,
                              r.object, r.objectPageOffset, false);
    statIpcTransfers += r.numPages;
    return dest_va;
}

// ----------------------------------------------------------------------
// Fault handling
// ----------------------------------------------------------------------

bool
Kernel::handleFault(const Fault &fault)
{
    VIC_EVLOG(mach.events(),
              format("fault  %s %s space=%u va=%llx",
                     fault.type == FaultType::Protection ? "prot "
                                                         : "unmap",
                     accessTypeName(fault.access), fault.address.space,
                     (unsigned long long)fault.address.va.value));
    if (fault.type == FaultType::Protection) {
        if (pmapImpl->resolveConsistencyFault(fault.address,
                                              fault.access)) {
            ++statConsistencyFaults;
            return true;
        }
        // Genuine VM-level denial: copy-on-write?
        if (fault.address.space == OsParams::kernelSpace)
            return false;
        AddressSpace &as = spaceFor(fault.address.space);
        const VirtAddr pv = mach.pageTable().pageBase(fault.address.va);
        Region *r = as.regionFor(pv);
        if (r && fault.access == AccessType::Store && r->copyOnWrite &&
            r->maxProt.write)
            return resolveCowFault(fault, as, *r);
        return false;
    }
    return resolveMappingFault(fault);
}

FrameId
Kernel::faultInPage(Region &region, std::uint32_t page_idx,
                    VirtAddr page_va, AccessType access)
{
    const std::uint64_t obj_page = region.objectPageOffset + page_idx;
    FrameId frame;
    if (auto swap_block = region.object->swapBlockAt(obj_page)) {
        // Page in from swap. The DMA-write consistency step purges
        // any dirty cache residue of the recycled frame so it cannot
        // clobber the device's data; the stale state it leaves makes
        // the first CPU access refetch fresh memory.
        frame = allocFrame(pmapImpl->dColourOf(page_va));
        pmapImpl->dmaWrite(frame);
        pageoutDaemon->wire(frame);
        mach.disk().readBlockAsync(*swap_block, mach.frameAddr(frame));
        mach.drainDma("kernel.swap-in");
        pageoutDaemon->unwire(frame);
        pageoutDaemon->freeSwapBlock(*swap_block);
        region.object->clearSwapBlock(obj_page);
        ++statPageins;
    } else if (region.object->backing() == VmObject::Backing::Zero) {
        frame = allocFrame(pmapImpl->dColourOf(page_va));
        pagePreparer->zeroPage(frame, page_va);
    } else {
        // Page in from the file: the server copies the buffer-cache
        // block into a fresh page. When the page is destined for
        // execution this is the data-space to instruction-space copy
        // of Section 5.1.
        BufferCache::BufferRef buf = bufCache->getBlock(
            region.object->file(), obj_page, false, false);
        frame = allocFrame(pmapImpl->dColourOf(page_va));
        pagePreparer->copyPage(frame, buf.frame, page_va);
        if (access == AccessType::IFetch)
            ++statDToICopies;
    }
    region.object->setFrame(obj_page, frame);
    pageoutDaemon->registerPageable(region.object, obj_page, frame);
    return frame;
}

bool
Kernel::resolveMappingFault(const Fault &fault)
{
    if (fault.address.space == OsParams::kernelSpace)
        return false;  // kernel mappings are always entered explicitly

    AddressSpace &as = spaceFor(fault.address.space);
    const VirtAddr pv = mach.pageTable().pageBase(fault.address.va);
    Region *r = as.regionFor(pv);
    if (!r)
        return false;
    if (!protPermits(r->prot, fault.access))
        return false;

    // A first touch of a virtual page is a mapping fault, which any
    // cache architecture pays; re-faults on pages whose translation
    // was dropped for consistency reasons are consistency overhead
    // (Section 5.1's distinction).
    if (as.claimFirstAccess(pv))
        ++statMappingFaults;
    else
        ++statConsistencyFaults;

    const std::uint32_t idx = r->pageIndexOf(pv, mach.pageBytes());
    const bool has_private = r->privatePages[idx].has_value();
    std::optional<FrameId> frame = r->privatePages[idx];
    if (!frame)
        frame = r->object->frameAt(r->objectPageOffset + idx);
    if (!frame)
        frame = faultInPage(*r, idx, pv, fault.access);

    Protection eff = r->prot;
    if (r->copyOnWrite && !has_private)
        eff.write = false;

    // If the faulting access is a store that the effective protection
    // cannot grant (a COW page), map for reading; the retried store
    // will take the copy-on-write path.
    AccessType enter_access = fault.access;
    if (enter_access == AccessType::Store && !eff.write)
        enter_access = AccessType::Load;

    pmapImpl->enter(SpaceVa(fault.address.space, pv), *frame, eff,
                    enter_access, {});
    return true;
}

bool
Kernel::resolveCowFault(const Fault &fault, AddressSpace &as,
                        Region &region)
{
    (void)as;
    ++statCowFaults;
    const VirtAddr pv = mach.pageTable().pageBase(fault.address.va);
    const std::uint32_t idx = region.pageIndexOf(pv, mach.pageBytes());
    vic_assert(!region.privatePages[idx],
               "copy-on-write fault with private page already present");

    auto src = region.object->frameAt(region.objectPageOffset + idx);
    if (!src) {
        // The shared page was reclaimed between the mapping fault and
        // the write; bring it back.
        src = faultInPage(region, idx, pv, AccessType::Load);
    }

    // Pin the source so the allocation below cannot page it out from
    // under the copy.
    pageoutDaemon->wire(*src);
    const FrameId copy = allocFrame(pmapImpl->dColourOf(pv));
    pagePreparer->copyPage(copy, *src, pv);
    pageoutDaemon->unwire(*src);

    pmapImpl->remove(SpaceVa(fault.address.space, pv));
    region.privatePages[idx] = copy;
    pmapImpl->enter(SpaceVa(fault.address.space, pv), copy, region.prot,
                    AccessType::Store, {});
    return true;
}

} // namespace vic
