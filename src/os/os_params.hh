/**
 * @file
 * Operating-system layer configuration.
 *
 * Fixed virtual-address layout constants and sizing knobs for the
 * Mach-like kernel. The fixed addresses deliberately have unrelated
 * cache colours, reproducing the original system's behaviour in which
 * kernel- and server-chosen addresses "did not align, so accesses
 * resulted in frequent consistency faults" (Section 4.2) until the
 * alignment policies were enabled.
 */

#ifndef VIC_OS_OS_PARAMS_HH
#define VIC_OS_OS_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace vic
{

struct OsParams
{
    // --- space ids ---
    static constexpr SpaceId kernelSpace = 0;
    static constexpr SpaceId serverSpace = 1;
    static constexpr SpaceId firstTaskSpace = 2;

    // --- kernel virtual layout (space 0) ---
    /** Window used to prepare (zero/copy) destination pages when no
     *  aligned address is requested. */
    std::uint64_t prepareDestBase = 0x0010'0000;
    /** Aligned prepare windows: one page per cache colour. */
    std::uint64_t alignedPrepareBase = 0x0100'0000;
    /** Window used to map the source frame of a page copy. */
    std::uint64_t copySrcBase = 0x0200'0000;

    // --- server virtual layout (space 1) ---
    /** Buffer-cache buffers: one page per slot. */
    std::uint64_t bufferCacheBase = 0x0300'0000;
    /** Fixed base for per-task shared pages in the server (the "old"
     *  non-aligning allocation). */
    std::uint64_t serverSharedBase = 0x0400'1000;
    /** Kernel-chosen (aligning) shared-page allocations. */
    std::uint64_t serverDynamicBase = 0x0800'0000;

    // --- task virtual layout (every task space) ---
    /** Program text region base. */
    std::uint64_t taskTextBase = 0x4000'0000;
    /** Fixed base for the task side of the Unix-server shared pages
     *  (the "old" non-aligning allocation — note the colour differs
     *  from serverSharedBase). */
    std::uint64_t taskSharedBase = 0x5000'3000;
    /** Base of kernel-chosen task allocations (IPC destinations,
     *  vm_allocate). */
    std::uint64_t taskDynamicBase = 0x8000'0000;

    // --- sizing ---
    std::uint32_t bufferCacheSlots = 96;
    /** Flush dirty buffers beyond this count (write-behind). */
    std::uint32_t writeBehindThreshold = 24;
    /** Shared pages between each task and the Unix server. */
    std::uint32_t sharedPagesPerTask = 1;
    /** Words the syscall stub writes/reads through the shared page. */
    std::uint32_t syscallArgWords = 8;

    /** Cycles charged per pmap bookkeeping invocation (bit-vector and
     *  protection updates). */
    Cycles pmapBookkeepingCycles = 40;

    // --- pageout daemon ---
    /** Reclaim pages when the free pool drops below this. */
    std::uint64_t pageoutLowWater = 12;
    /** ...until it reaches this. */
    std::uint64_t pageoutHighWater = 32;
    bool enablePageout = true;
};

} // namespace vic

#endif // VIC_OS_OS_PARAMS_HH
