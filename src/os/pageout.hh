/**
 * @file
 * Pageout daemon: physical page reclamation through a swap area.
 *
 * When the free page pool runs low, resident pages are evicted FIFO:
 * every translation is removed through the pmap, dirty cache data is
 * flushed (the DMA-read consistency step — the device must see
 * current bytes), and the page is written to a swap block by DMA.
 * A later touch pages it back in with a DMA-write, whose consistency
 * step keeps stale cached copies from shadowing the fresh data.
 * File-backed (program text) pages are simply dropped: they can be
 * re-copied from the buffer cache, so they cost no swap write.
 *
 * Pageout is exactly the path where the paper notes a system can use
 * "the fact that a physical page is dirty to avoid a redundant cache
 * flush" — here the pmap's consistency state (or modified bits, for
 * the classic strategies) makes the flush-vs-skip decision.
 */

#ifndef VIC_OS_PAGEOUT_HH
#define VIC_OS_PAGEOUT_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "os/vm_object.hh"

namespace vic
{

class Kernel;

class PageoutDaemon
{
  public:
    /** Disk block namespace for swap (disjoint from file blocks). */
    static constexpr std::uint64_t swapBlockBase = std::uint64_t(1)
                                                   << 32;

    explicit PageoutDaemon(Kernel &k);

    /** Announce that (@p object, @p page) became resident in
     *  @p frame and may be reclaimed. */
    void registerPageable(const std::shared_ptr<VmObject> &object,
                          std::uint64_t page, FrameId frame);

    /** Pin @p frame against reclamation (e.g. the source of an
     *  in-progress page copy). */
    void wire(FrameId frame);

    /** Release a wire() pin. */
    void unwire(FrameId frame);

    /** Evict pages until the free pool reaches the high-water mark
     *  (or no candidates remain). Re-entrancy safe (no-op inside an
     *  ongoing reclaim). */
    void reclaim();

    /** Free the swap blocks held by a dying object. */
    void releaseSwap(VmObject &object);

    /** Take a fresh swap block (page-in hands the old one back). */
    std::uint64_t allocSwapBlock();
    void freeSwapBlock(std::uint64_t block);

    /** Candidates currently tracked (tests). */
    std::size_t candidateCount() const { return fifo.size(); }

  private:
    struct Candidate
    {
        std::weak_ptr<VmObject> object;
        std::uint64_t page;
        FrameId frame;
    };

    Kernel &kernel;
    std::deque<Candidate> fifo;
    std::unordered_set<FrameId> wired;
    std::vector<std::uint64_t> freeSwap;
    std::uint64_t nextSwap = swapBlockBase;
    bool reclaiming = false;

    Counter &statPageouts;
    Counter &statTextDrops;
    Counter &statSwapWrites;

    /** Try to evict one candidate. @return true iff a frame was
     *  freed. */
    bool pageOut(const Candidate &c);
};

} // namespace vic

#endif // VIC_OS_PAGEOUT_HH
