#include "os/vm_object.hh"

#include "common/logging.hh"

namespace vic
{

VmObject::VmObject(Backing backing_kind, FileId backing_file,
                   std::uint64_t num_pages)
    : kind(backing_kind), fileId(backing_file), frames(num_pages),
      swap(num_pages)
{
    vic_assert(num_pages > 0, "empty VM object");
}

VmObject
VmObject::anonymous(std::uint64_t num_pages)
{
    return VmObject(Backing::Zero, invalidFile, num_pages);
}

VmObject
VmObject::fileBacked(FileId file, std::uint64_t num_pages)
{
    return VmObject(Backing::File, file, num_pages);
}

std::optional<FrameId>
VmObject::frameAt(std::uint64_t page) const
{
    vic_assert(page < frames.size(), "object page %llu out of range",
               (unsigned long long)page);
    return frames[page];
}

void
VmObject::setFrame(std::uint64_t page, FrameId frame)
{
    vic_assert(page < frames.size(), "object page %llu out of range",
               (unsigned long long)page);
    frames[page] = frame;
}

void
VmObject::clearFrame(std::uint64_t page)
{
    vic_assert(page < frames.size(), "object page %llu out of range",
               (unsigned long long)page);
    frames[page].reset();
}

std::vector<FrameId>
VmObject::residentFrames() const
{
    std::vector<FrameId> out;
    for (const auto &f : frames) {
        if (f)
            out.push_back(*f);
    }
    return out;
}

std::optional<std::uint64_t>
VmObject::swapBlockAt(std::uint64_t page) const
{
    vic_assert(page < swap.size(), "object page %llu out of range",
               (unsigned long long)page);
    return swap[page];
}

void
VmObject::setSwapBlock(std::uint64_t page, std::uint64_t block)
{
    vic_assert(page < swap.size(), "object page %llu out of range",
               (unsigned long long)page);
    swap[page] = block;
}

void
VmObject::clearSwapBlock(std::uint64_t page)
{
    vic_assert(page < swap.size(), "object page %llu out of range",
               (unsigned long long)page);
    swap[page].reset();
}

std::vector<std::uint64_t>
VmObject::swapBlocks() const
{
    std::vector<std::uint64_t> out;
    for (const auto &b : swap) {
        if (b)
            out.push_back(*b);
    }
    return out;
}

} // namespace vic
