/**
 * @file
 * A task's (or the Unix server's) virtual address space: a set of
 * regions mapping VM objects, plus a virtual-address allocator that
 * can honour cache-colour requests — the hook through which the
 * operating system "selects virtual addresses that naturally align
 * within the cache so that consistency operations can be avoided"
 * (Section 1.1).
 */

#ifndef VIC_OS_ADDRESS_SPACE_HH
#define VIC_OS_ADDRESS_SPACE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "os/vm_object.hh"

namespace vic
{

/** One mapped range of an address space. */
struct Region
{
    VirtAddr start;
    std::uint32_t numPages = 0;
    Protection prot;          ///< current VM-level protection
    Protection maxProt;       ///< ceiling for protection changes
    bool copyOnWrite = false; ///< writes get a private copy
    std::shared_ptr<VmObject> object;
    std::uint64_t objectPageOffset = 0;

    /** Private page overlays created by copy-on-write faults, keyed by
     *  page index within the region. */
    std::vector<std::optional<FrameId>> privatePages;

    /** @return true iff @p va lies inside this region. */
    bool contains(VirtAddr va, std::uint32_t page_bytes) const;

    /** Page index within the region of @p va. */
    std::uint32_t pageIndexOf(VirtAddr va, std::uint32_t page_bytes) const;
};

class AddressSpace
{
  public:
    /**
     * @param space_id  hardware space identifier
     * @param page_bytes VM page size
     * @param num_colours data-cache colours (for colour-directed
     *        address allocation)
     * @param dynamic_base start of the kernel-chosen allocation area
     */
    AddressSpace(SpaceId space_id, std::uint32_t page_bytes,
                 std::uint32_t num_colours, std::uint64_t dynamic_base);

    SpaceId id() const { return spaceId; }

    /** Region containing @p va; nullptr if unmapped. */
    Region *regionFor(VirtAddr va);
    const Region *regionFor(VirtAddr va) const;

    /**
     * Pick @p pages contiguous unused pages in the dynamic area. When
     * @p colour is given, the first page's data-cache colour matches
     * it (the alignment optimisation); otherwise allocation is
     * first-fit, which on the original system meant "the source and
     * destination virtual addresses rarely aligned" (Section 4.2).
     */
    VirtAddr allocateVa(std::uint32_t pages,
                        std::optional<CachePageId> colour);

    /** Create a region. @p start must not overlap an existing one. */
    Region &createRegion(VirtAddr start, std::uint32_t pages,
                         Protection prot, Protection max_prot,
                         std::shared_ptr<VmObject> object,
                         std::uint64_t object_page_offset,
                         bool copy_on_write);

    /** Detach and return the region starting at @p start. */
    Region removeRegion(VirtAddr start);

    /** All regions (teardown iteration). */
    std::vector<Region> &regions() { return regionList; }

    /** First-access tracking: returns true the first time a given
     *  virtual page is claimed, so the kernel can tell mapping faults
     *  (first access, architecture-independent) from consistency
     *  re-faults. */
    bool claimFirstAccess(VirtAddr page_va);

  private:
    SpaceId spaceId;
    std::uint32_t pageBytes;
    std::uint32_t colours;
    std::uint64_t bump;
    std::vector<Region> regionList;
    std::unordered_set<std::uint64_t> touchedPages;
};

} // namespace vic

#endif // VIC_OS_ADDRESS_SPACE_HH
