/**
 * @file
 * Block-storage device attached to the DMA engine.
 *
 * Blocks are page sized. A block read completes with a DMA-write into
 * a physical frame; a block write is issued as a DMA-read from a
 * physical frame. The device keeps its own backing store so that data
 * written with stale cache lines unflushed really is corrupted on
 * "disk" and comes back corrupted — which is how the consistency
 * oracle catches a missing pre-DMA flush.
 */

#ifndef VIC_DMA_DISK_HH
#define VIC_DMA_DISK_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/cycle_clock.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dma/dma_engine.hh"

namespace vic
{

class Disk
{
  public:
    /**
     * @param block_bytes block size (equal to the VM page size)
     * @param access_cycles modelled seek+rotation cost per request
     * @param engine    DMA engine used for transfers
     * @param clock     cycle clock
     * @param stat_set  statistics registry
     */
    Disk(std::uint32_t block_bytes, Cycles access_cycles,
         DmaEngine &engine, CycleClock &clock, StatSet &stat_set);

    std::uint32_t blockBytes() const { return blockSize; }

    /** Read block @p block into the frame at physical address @p pa
     *  (a DMA-write into memory). Unwritten blocks read as zero. */
    void readBlock(std::uint64_t block, PhysAddr pa);

    /** Write the frame at @p pa to block @p block (a DMA-read from
     *  memory). */
    void writeBlock(std::uint64_t block, PhysAddr pa);

    /**
     * Begin reading block @p block into memory at @p pa: issues the
     * DMA-write asynchronously and returns with its line-granular
     * beats pending on the engine (drive them with
     * DmaEngine::stepBeat/drainAll or Machine::drainDma).
     */
    DmaTransferId readBlockAsync(std::uint64_t block, PhysAddr pa);

    /**
     * Begin writing the frame at @p pa to block @p block: issues the
     * DMA-read asynchronously; the block's backing store is updated
     * only when the final beat completes, so mid-transfer schedules
     * genuinely observe a torn block.
     */
    DmaTransferId writeBlockAsync(std::uint64_t block, PhysAddr pa);

    /** Direct peek at stored data, for tests. Unwritten blocks read as
     *  zero. */
    std::uint32_t peekWord(std::uint64_t block,
                           std::uint32_t word_index) const;

  private:
    std::uint32_t blockSize;
    Cycles accessCycles;
    DmaEngine &dma;
    CycleClock &clk;

    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> blocks;

    Counter &statBlockReads;
    Counter &statBlockWrites;

    std::uint32_t wordsPerBlock() const { return blockSize / 4; }
};

} // namespace vic

#endif // VIC_DMA_DISK_HH
