#include "dma/dma_engine.hh"

#include "common/logging.hh"

namespace vic
{

DmaEngine::DmaEngine(const DmaCosts &dma_costs, PhysicalMemory &memory,
                     CycleClock &clock, StatSet &stat_set)
    : costs(dma_costs), mem(memory), clk(clock),
      statWrites(stat_set.counter("dma.device_writes")),
      statReads(stat_set.counter("dma.device_reads")),
      statWordsMoved(stat_set.counter("dma.words_moved"))
{
}

void
DmaEngine::attachSnoopedCache(Cache *cache)
{
    vic_assert(cache != nullptr, "null snooped cache");
    snooped.push_back(cache);
}

void
DmaEngine::deviceWrite(PhysAddr pa, const std::uint32_t *words,
                       std::uint32_t nwords)
{
    vic_assert(pa.value % 4 == 0, "unaligned DMA write");
    ++statWrites;
    statWordsMoved += nwords;
    clk.advance(costs.setup + costs.perWord * nwords);
    if (evlog) {
        VIC_EVLOG(*evlog,
                  format("dma-wr pa=%llx words=%u%s",
                         (unsigned long long)pa.value, nwords,
                         snooped.empty() ? "" : " (snooped)"));
    }

    for (std::uint32_t i = 0; i < nwords; ++i) {
        PhysAddr addr = pa.plus(std::uint64_t(i) * 4);
        if (!snooped.empty()) {
            // Coherent DMA: kill any cached copies so later CPU reads
            // miss and fetch the new data.
            for (Cache *c : snooped)
                c->snoopInvalidateLine(addr);
        }
        mem.writeWord(addr, words[i]);
        if (observer)
            observer->dmaWrite(addr, words[i]);
    }
}

void
DmaEngine::deviceRead(PhysAddr pa, std::uint32_t *out,
                      std::uint32_t nwords)
{
    vic_assert(pa.value % 4 == 0, "unaligned DMA read");
    ++statReads;
    statWordsMoved += nwords;
    clk.advance(costs.setup + costs.perWord * nwords);
    if (evlog) {
        VIC_EVLOG(*evlog,
                  format("dma-rd pa=%llx words=%u%s",
                         (unsigned long long)pa.value, nwords,
                         snooped.empty() ? "" : " (snooped)"));
    }

    for (std::uint32_t i = 0; i < nwords; ++i) {
        PhysAddr addr = pa.plus(std::uint64_t(i) * 4);
        if (!snooped.empty()) {
            // Coherent DMA: pull dirty data out of the caches first.
            for (Cache *c : snooped)
                c->snoopWriteBackLine(addr);
        }
        out[i] = mem.readWord(addr);
        if (observer)
            observer->dmaRead(addr, out[i]);
    }
}

} // namespace vic
