#include "dma/dma_engine.hh"

#include <utility>

#include "common/logging.hh"

namespace vic
{

DmaEngine::DmaEngine(const DmaCosts &dma_costs, PhysicalMemory &memory,
                     CycleClock &clock, StatSet &stat_set)
    : costs(dma_costs), mem(memory), clk(clock),
      statWrites(stat_set.counter("dma.device_writes")),
      statReads(stat_set.counter("dma.device_reads")),
      statWordsMoved(stat_set.counter("dma.words_moved"))
{
}

void
DmaEngine::attachSnoopedCache(Cache *cache)
{
    vic_assert(cache != nullptr, "null snooped cache");
    snooped.push_back(cache);
}

void
DmaEngine::setBeatBytes(std::uint32_t bytes)
{
    vic_assert(bytes >= 4 && bytes % 4 == 0,
               "beat size %u not a word multiple", bytes);
    beatSize = bytes;
}

DmaTransferId
DmaEngine::start(bool device_writes, PhysAddr pa,
                 const std::uint32_t *words, std::uint32_t *out,
                 std::uint32_t nwords,
                 std::function<void()> on_complete)
{
    vic_assert(pa.value % 4 == 0, "unaligned DMA transfer");

    // Per-transfer accounting happens at command time, exactly where
    // the historic atomic implementation charged it, so the
    // synchronous path's cycle totals and statistics are unchanged.
    if (device_writes)
        ++statWrites;
    else
        ++statReads;
    statWordsMoved += nwords;
    clk.advance(costs.setup);
    if (evlog) {
        VIC_EVLOG(*evlog,
                  format("dma-%s pa=%llx words=%u%s",
                         device_writes ? "wr" : "rd",
                         (unsigned long long)pa.value, nwords,
                         snooped.empty() ? "" : " (snooped)"));
    }

    const DmaTransferId id = nextId++;
    if (nwords == 0) {
        // Degenerate command: completes at setup time, nothing queued.
        if (on_complete)
            on_complete();
        return id;
    }

    Transfer t;
    t.id = id;
    t.deviceWrites = device_writes;
    t.pa = pa;
    t.nwords = nwords;
    t.onComplete = std::move(on_complete);
    if (device_writes)
        t.buf.assign(words, words + nwords);
    else
        t.out = out;
    queue.push_back(std::move(t));
    return id;
}

DmaTransferId
DmaEngine::startWrite(PhysAddr pa, const std::uint32_t *words,
                      std::uint32_t nwords,
                      std::function<void()> on_complete)
{
    return start(true, pa, words, nullptr, nwords,
                 std::move(on_complete));
}

DmaTransferId
DmaEngine::startRead(PhysAddr pa, std::uint32_t *out,
                     std::uint32_t nwords,
                     std::function<void()> on_complete)
{
    return start(false, pa, nullptr, out, nwords,
                 std::move(on_complete));
}

bool
DmaEngine::transferPending(DmaTransferId id) const
{
    for (const Transfer &t : queue)
        if (t.id == id)
            return true;
    return false;
}

std::uint32_t
DmaEngine::beatWords(const Transfer &t) const
{
    const std::uint64_t next_word_addr =
        t.pa.value + std::uint64_t(t.done) * 4;
    const std::uint64_t line_end =
        (next_word_addr / beatSize + 1) * beatSize;
    const std::uint32_t to_boundary =
        static_cast<std::uint32_t>((line_end - next_word_addr) / 4);
    const std::uint32_t remaining = t.nwords - t.done;
    return remaining < to_boundary ? remaining : to_boundary;
}

std::optional<DmaEngine::BeatInfo>
DmaEngine::nextBeat(std::size_t queue_index) const
{
    if (queue_index >= queue.size())
        return std::nullopt;
    const Transfer &t = queue[queue_index];
    BeatInfo b;
    b.id = t.id;
    b.pa = t.pa.plus(std::uint64_t(t.done) * 4);
    b.nwords = beatWords(t);
    b.deviceWrites = t.deviceWrites;
    return b;
}

void
DmaEngine::executeBeat(std::size_t index)
{
    Transfer &t = queue[index];
    const std::uint32_t words = beatWords(t);
    clk.advance(costs.perWord * words);

    for (std::uint32_t i = 0; i < words; ++i) {
        const PhysAddr addr =
            t.pa.plus(std::uint64_t(t.done + i) * 4);
        if (t.deviceWrites) {
            if (!snooped.empty()) {
                // Coherent DMA: kill any cached copies so later CPU
                // reads miss and fetch the new data.
                for (Cache *c : snooped)
                    c->snoopInvalidateLine(addr);
            }
            mem.writeWord(addr, t.buf[t.done + i]);
            if (observer)
                observer->dmaWrite(addr, t.buf[t.done + i]);
        } else {
            if (!snooped.empty()) {
                // Coherent DMA: pull dirty data out of the caches
                // first.
                for (Cache *c : snooped)
                    c->snoopWriteBackLine(addr);
            }
            t.out[t.done + i] = mem.readWord(addr);
            if (observer)
                observer->dmaRead(addr, t.out[t.done + i]);
        }
    }
    t.done += words;

    if (t.done == t.nwords) {
        // Retire before the callback so completion handlers observe a
        // consistent queue (and may start fresh transfers).
        std::function<void()> done = std::move(t.onComplete);
        queue.erase(queue.begin() +
                    static_cast<std::ptrdiff_t>(index));
        if (done)
            done();
    }
}

bool
DmaEngine::stepBeat()
{
    if (queue.empty())
        return false;
    executeBeat(0);
    return true;
}

bool
DmaEngine::stepTransfer(DmaTransferId id)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].id == id) {
            executeBeat(i);
            return true;
        }
    }
    return false;
}

void
DmaEngine::drainAll()
{
    while (stepBeat()) {
    }
}

void
DmaEngine::deviceWrite(PhysAddr pa, const std::uint32_t *words,
                       std::uint32_t nwords)
{
    const DmaTransferId id = startWrite(pa, words, nwords);
    while (stepTransfer(id)) {
    }
}

void
DmaEngine::deviceRead(PhysAddr pa, std::uint32_t *out,
                      std::uint32_t nwords)
{
    const DmaTransferId id = startRead(pa, out, nwords);
    while (stepTransfer(id)) {
    }
}

} // namespace vic
