#include "dma/disk.hh"

#include "common/logging.hh"

namespace vic
{

Disk::Disk(std::uint32_t block_bytes, Cycles access_cycles,
           DmaEngine &engine, CycleClock &clock, StatSet &stat_set)
    : blockSize(block_bytes), accessCycles(access_cycles), dma(engine),
      clk(clock),
      statBlockReads(stat_set.counter("disk.block_reads")),
      statBlockWrites(stat_set.counter("disk.block_writes"))
{
    vic_assert(block_bytes % 4 == 0, "block size %u not word multiple",
               block_bytes);
}

void
Disk::readBlock(std::uint64_t block, PhysAddr pa)
{
    const DmaTransferId id = readBlockAsync(block, pa);
    while (dma.stepTransfer(id)) {
    }
}

void
Disk::writeBlock(std::uint64_t block, PhysAddr pa)
{
    const DmaTransferId id = writeBlockAsync(block, pa);
    while (dma.stepTransfer(id)) {
    }
}

DmaTransferId
Disk::readBlockAsync(std::uint64_t block, PhysAddr pa)
{
    ++statBlockReads;
    clk.advance(accessCycles);
    auto it = blocks.find(block);
    if (it == blocks.end()) {
        std::vector<std::uint32_t> zeros(wordsPerBlock(), 0);
        return dma.startWrite(pa, zeros.data(), wordsPerBlock());
    }
    return dma.startWrite(pa, it->second.data(), wordsPerBlock());
}

DmaTransferId
Disk::writeBlockAsync(std::uint64_t block, PhysAddr pa)
{
    ++statBlockWrites;
    clk.advance(accessCycles);
    // The device latches the frame's data beat by beat; the block's
    // backing store is replaced only once the whole transfer lands, so
    // a schedule that corrupts memory mid-transfer corrupts the block.
    auto staging =
        std::make_shared<std::vector<std::uint32_t>>(wordsPerBlock());
    return dma.startRead(pa, staging->data(), wordsPerBlock(),
                         [this, block, staging] {
                             blocks[block] = std::move(*staging);
                         });
}

std::uint32_t
Disk::peekWord(std::uint64_t block, std::uint32_t word_index) const
{
    vic_assert(word_index < wordsPerBlock(), "word index %u out of block",
               word_index);
    auto it = blocks.find(block);
    return it == blocks.end() ? 0 : it->second[word_index];
}

} // namespace vic
