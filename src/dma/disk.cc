#include "dma/disk.hh"

#include "common/logging.hh"

namespace vic
{

Disk::Disk(std::uint32_t block_bytes, Cycles access_cycles,
           DmaEngine &engine, CycleClock &clock, StatSet &stat_set)
    : blockSize(block_bytes), accessCycles(access_cycles), dma(engine),
      clk(clock),
      statBlockReads(stat_set.counter("disk.block_reads")),
      statBlockWrites(stat_set.counter("disk.block_writes"))
{
    vic_assert(block_bytes % 4 == 0, "block size %u not word multiple",
               block_bytes);
}

void
Disk::readBlock(std::uint64_t block, PhysAddr pa)
{
    ++statBlockReads;
    clk.advance(accessCycles);
    auto it = blocks.find(block);
    if (it == blocks.end()) {
        std::vector<std::uint32_t> zeros(wordsPerBlock(), 0);
        dma.deviceWrite(pa, zeros.data(), wordsPerBlock());
    } else {
        dma.deviceWrite(pa, it->second.data(), wordsPerBlock());
    }
}

void
Disk::writeBlock(std::uint64_t block, PhysAddr pa)
{
    ++statBlockWrites;
    clk.advance(accessCycles);
    auto &buf = blocks[block];
    buf.resize(wordsPerBlock());
    dma.deviceRead(pa, buf.data(), wordsPerBlock());
}

std::uint32_t
Disk::peekWord(std::uint64_t block, std::uint32_t word_index) const
{
    vic_assert(word_index < wordsPerBlock(), "word index %u out of block",
               word_index);
    auto it = blocks.find(block);
    return it == blocks.end() ? 0 : it->second[word_index];
}

} // namespace vic
