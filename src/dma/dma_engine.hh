/**
 * @file
 * DMA engine.
 *
 * Transfers data between devices and physical memory. By default it
 * does NOT snoop the caches — the paper's machine: "I/O devices that
 * rely on DMA do not snoop the cache" (Section 1.1) — so the operating
 * system must flush dirty lines before a DMA-read and purge shadowing
 * lines around a DMA-write. A snooping mode implements the Section 3.3
 * variant in which DMA can access the cache, letting tests and the
 * architecture ablation show that the OS-level operations become
 * unnecessary there.
 *
 * Transfers are asynchronous at line granularity: startWrite/startRead
 * enqueue a pending transfer whose beats (one cache line of words
 * each) are executed one at a time by stepBeat()/stepTransfer(). This
 * is what lets the interleaving model checker (src/mc) overlap DMA
 * with CPU execution and expose mid-transfer consistency windows. The
 * classic deviceWrite/deviceRead entry points remain as the
 * synchronous compatibility path — start followed by an immediate
 * drain — with cycle charges and statistics identical to the historic
 * atomic implementation, so existing call sites and calibrated benches
 * are unaffected.
 */

#ifndef VIC_DMA_DMA_ENGINE_HH
#define VIC_DMA_DMA_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "common/cycle_clock.hh"
#include "common/event_log.hh"
#include "common/observer.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/physical_memory.hh"

namespace vic
{

/** Cycle costs of a DMA transfer. */
struct DmaCosts
{
    Cycles setup = 100;  ///< per-transfer command overhead on the CPU
    Cycles perWord = 1;  ///< bus cycles per 32-bit word moved
};

/** Handle identifying one in-flight transfer. Never reused. */
using DmaTransferId = std::uint64_t;

class DmaEngine
{
  public:
    DmaEngine(const DmaCosts &dma_costs, PhysicalMemory &memory,
              CycleClock &clock, StatSet &stat_set);

    /** Register a cache to keep coherent (enables snooping mode). */
    void attachSnoopedCache(Cache *cache);

    /** @return true iff at least one cache is snooped. */
    bool snooping() const { return !snooped.empty(); }

    /** Install the transfer observer (consistency oracle). */
    void setObserver(MemoryObserver *obs) { observer = obs; }

    /** Attach the machine's event log; transfers are recorded when it
     *  is enabled (one guarded branch per transfer, not per word). */
    void setEventLog(EventLog *log) { evlog = log; }

    /** Beat granularity in bytes (the machine sets this to its cache
     *  line size). Must be a multiple of 4. */
    void setBeatBytes(std::uint32_t bytes);
    std::uint32_t beatBytes() const { return beatSize; }

    // ------------------------------------------------------------------
    // Asynchronous line-granular transfers
    // ------------------------------------------------------------------

    /**
     * Begin a DMA-write: the device will deposit @p nwords words into
     * memory starting at @p pa, one line-sized beat per step. The data
     * is copied out of @p words immediately (the device latches its
     * buffer at command time), so the caller's storage may be reused.
     * The per-transfer setup cost is charged now; each beat charges
     * its word-move cost when stepped. @p on_complete (optional) runs
     * after the final beat.
     */
    DmaTransferId startWrite(PhysAddr pa, const std::uint32_t *words,
                             std::uint32_t nwords,
                             std::function<void()> on_complete = {});

    /**
     * Begin a DMA-read: the device will read @p nwords words from the
     * memory system starting at @p pa into @p out, one beat per step.
     * @p out must stay valid until the transfer completes.
     */
    DmaTransferId startRead(PhysAddr pa, std::uint32_t *out,
                            std::uint32_t nwords,
                            std::function<void()> on_complete = {});

    /** Number of transfers with beats still pending. */
    std::size_t pendingTransfers() const { return queue.size(); }

    /** @return true iff @p id has beats still pending. */
    bool transferPending(DmaTransferId id) const;

    /** The next beat a transfer would execute (for schedulers). */
    struct BeatInfo
    {
        DmaTransferId id = 0;
        PhysAddr pa;               ///< first word of the beat
        std::uint32_t nwords = 0;  ///< words the beat moves
        bool deviceWrites = false; ///< true: device->memory (DMA-write)
    };

    /** Peek the next beat of the @p queue_index-th pending transfer
     *  (0 = oldest); nullopt if out of range. */
    std::optional<BeatInfo> nextBeat(std::size_t queue_index = 0) const;

    /** Execute one beat of the oldest pending transfer.
     *  @return false iff nothing was pending. */
    bool stepBeat();

    /** Execute one beat of transfer @p id.
     *  @return false iff @p id has no pending beats. */
    bool stepTransfer(DmaTransferId id);

    /** Run every pending transfer to completion, oldest first. */
    void drainAll();

    // ------------------------------------------------------------------
    // Synchronous compatibility path (start + immediate drain)
    // ------------------------------------------------------------------

    /**
     * DMA-write: the device deposits @p nwords words into memory
     * starting at @p pa (e.g. a disk read completing). In snooping mode
     * the matching cache lines are invalidated.
     */
    void deviceWrite(PhysAddr pa, const std::uint32_t *words,
                     std::uint32_t nwords);

    /**
     * DMA-read: the device reads @p nwords words from the memory system
     * starting at @p pa (e.g. a disk write being issued). In snooping
     * mode dirty cache lines are written back first so the device sees
     * current data; otherwise the device sees whatever memory holds.
     */
    void deviceRead(PhysAddr pa, std::uint32_t *out,
                    std::uint32_t nwords);

  private:
    struct Transfer
    {
        DmaTransferId id = 0;
        bool deviceWrites = false;
        PhysAddr pa;
        std::vector<std::uint32_t> buf; ///< device data (writes only)
        std::uint32_t *out = nullptr;   ///< destination (reads only)
        std::uint32_t done = 0;         ///< words already moved
        std::uint32_t nwords = 0;
        std::function<void()> onComplete;
    };

    DmaCosts costs;
    PhysicalMemory &mem;
    CycleClock &clk;
    std::vector<Cache *> snooped;
    MemoryObserver *observer = nullptr;
    EventLog *evlog = nullptr;
    std::uint32_t beatSize = 32;

    std::deque<Transfer> queue; ///< FIFO of incomplete transfers
    DmaTransferId nextId = 1;

    Counter &statWrites;
    Counter &statReads;
    Counter &statWordsMoved;

    DmaTransferId start(bool device_writes, PhysAddr pa,
                        const std::uint32_t *words, std::uint32_t *out,
                        std::uint32_t nwords,
                        std::function<void()> on_complete);

    /** Words the next beat of @p t moves (up to its line boundary). */
    std::uint32_t beatWords(const Transfer &t) const;

    /** Execute one beat of queue entry @p index, retiring the transfer
     *  (and running its completion callback) after the final beat. */
    void executeBeat(std::size_t index);
};

} // namespace vic

#endif // VIC_DMA_DMA_ENGINE_HH
