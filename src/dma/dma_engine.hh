/**
 * @file
 * DMA engine.
 *
 * Transfers data between devices and physical memory. By default it
 * does NOT snoop the caches — the paper's machine: "I/O devices that
 * rely on DMA do not snoop the cache" (Section 1.1) — so the operating
 * system must flush dirty lines before a DMA-read and purge shadowing
 * lines around a DMA-write. A snooping mode implements the Section 3.3
 * variant in which DMA can access the cache, letting tests and the
 * architecture ablation show that the OS-level operations become
 * unnecessary there.
 */

#ifndef VIC_DMA_DMA_ENGINE_HH
#define VIC_DMA_DMA_ENGINE_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "common/cycle_clock.hh"
#include "common/event_log.hh"
#include "common/observer.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/physical_memory.hh"

namespace vic
{

/** Cycle costs of a DMA transfer. */
struct DmaCosts
{
    Cycles setup = 100;  ///< per-transfer command overhead on the CPU
    Cycles perWord = 1;  ///< bus cycles per 32-bit word moved
};

class DmaEngine
{
  public:
    DmaEngine(const DmaCosts &dma_costs, PhysicalMemory &memory,
              CycleClock &clock, StatSet &stat_set);

    /** Register a cache to keep coherent (enables snooping mode). */
    void attachSnoopedCache(Cache *cache);

    /** @return true iff at least one cache is snooped. */
    bool snooping() const { return !snooped.empty(); }

    /** Install the transfer observer (consistency oracle). */
    void setObserver(MemoryObserver *obs) { observer = obs; }

    /** Attach the machine's event log; transfers are recorded when it
     *  is enabled (one guarded branch per transfer, not per word). */
    void setEventLog(EventLog *log) { evlog = log; }

    /**
     * DMA-write: the device deposits @p nwords words into memory
     * starting at @p pa (e.g. a disk read completing). In snooping mode
     * the matching cache lines are invalidated.
     */
    void deviceWrite(PhysAddr pa, const std::uint32_t *words,
                     std::uint32_t nwords);

    /**
     * DMA-read: the device reads @p nwords words from the memory system
     * starting at @p pa (e.g. a disk write being issued). In snooping
     * mode dirty cache lines are written back first so the device sees
     * current data; otherwise the device sees whatever memory holds.
     */
    void deviceRead(PhysAddr pa, std::uint32_t *out,
                    std::uint32_t nwords);

  private:
    DmaCosts costs;
    PhysicalMemory &mem;
    CycleClock &clk;
    std::vector<Cache *> snooped;
    MemoryObserver *observer = nullptr;
    EventLog *evlog = nullptr;

    Counter &statWrites;
    Counter &statReads;
    Counter &statWordsMoved;
};

} // namespace vic

#endif // VIC_DMA_DMA_ENGINE_HH
