/**
 * @file
 * Named statistic counters.
 *
 * Each simulated machine owns a StatSet; components obtain stable
 * references to named counters at construction time and bump them on the
 * hot path with plain integer increments. Benches read the set back by
 * name to print the paper's tables.
 */

#ifndef VIC_COMMON_STATS_HH
#define VIC_COMMON_STATS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace vic
{

/** A single monotonically increasing statistic. */
class Counter
{
  public:
    explicit Counter(std::string counter_name)
        : name_(std::move(counter_name))
    {}

    const std::string &name() const { return name_; }
    std::uint64_t value() const { return value_; }

    void operator+=(std::uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }

    /** Reset to zero (used between workload phases). */
    void clear() { value_ = 0; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/** An ordered collection of counters, keyed by name. */
class StatSet
{
  public:
    StatSet() = default;
    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /** Get (creating on first use) the counter called @p name. The
     *  returned reference remains valid for the StatSet's lifetime. */
    Counter &counter(const std::string &name);

    /** Current value of @p name; 0 if the counter was never created. */
    std::uint64_t value(const std::string &name) const;

    /** Reset every counter to zero. */
    void clearAll();

    /** All counters in creation order. */
    std::vector<const Counter *> all() const;

    /** Capture a snapshot of all current values, ordered by name.
     *  Snapshots feed the JSON artifacts, so the container must have a
     *  deterministic iteration order (vic_lint's det-unordered rule
     *  bans unordered containers in src/common sim-visible APIs). */
    std::map<std::string, std::uint64_t> snapshot() const;

    /** Render all counters whose names start with @p prefix, sorted by
     *  name, one per line ("name value\n"). Zero-valued counters are
     *  skipped unless @p include_zero. */
    std::string render(const std::string &prefix = "",
                       bool include_zero = false) const;

  private:
    std::deque<Counter> storage;
    std::map<std::string, Counter *> index; ///< cold path: lookups
                                            ///< happen at construction
};

} // namespace vic

#endif // VIC_COMMON_STATS_HH
