/**
 * @file
 * Structure-of-arrays column store.
 *
 * Hot lookup loops (the cache's tag probe, above all) touch one or
 * two fields of every element in a set; an array-of-structs layout
 * drags the untouched fields through the data cache with them and
 * defeats vectorisation of the compare loop. A ColumnStore keeps each
 * field in its own contiguous array so a scan over N elements reads
 * exactly N * sizeof(field) bytes, and the branchless tag-compare in
 * Cache::findWay() auto-vectorises.
 *
 * The store is fixed-size after construction; columns therefore never
 * reallocate, and raw column pointers obtained once (via column<I>())
 * stay valid for the store's lifetime — the same stability contract
 * the access pipeline's pre-resolved handles rely on elsewhere.
 */

#ifndef VIC_COMMON_COLUMN_STORE_HH
#define VIC_COMMON_COLUMN_STORE_HH

#include <cstddef>
#include <tuple>
#include <vector>

namespace vic
{

template <typename... Columns>
class ColumnStore
{
  public:
    ColumnStore() = default;

    /** @p n elements per column, value-initialised. */
    explicit ColumnStore(std::size_t n)
        : count(n), cols(std::vector<Columns>(n)...)
    {}

    std::size_t size() const { return count; }

    /** Raw pointer to column @p I; stable for the store's lifetime. */
    template <std::size_t I>
    auto *
    column()
    {
        return std::get<I>(cols).data();
    }

    template <std::size_t I>
    const auto *
    column() const
    {
        return std::get<I>(cols).data();
    }

    /** Value-initialise every element of column @p I (bulk reset). */
    template <std::size_t I>
    void
    clearColumn()
    {
        auto &c = std::get<I>(cols);
        c.assign(c.size(), {});
    }

  private:
    std::size_t count = 0;
    std::tuple<std::vector<Columns>...> cols;
};

} // namespace vic

#endif // VIC_COMMON_COLUMN_STORE_HH
