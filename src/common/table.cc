#include "common/table.hh"

#include <cstdio>

#include "common/logging.hh"

namespace vic
{

Table::Table(std::vector<std::string> headers)
    : headerRow(std::move(headers))
{
}

void
Table::row()
{
    rows.emplace_back();
}

void
Table::cell(const std::string &text)
{
    vic_assert(!rows.empty(), "Table::cell before Table::row");
    rows.back().push_back(text);
}

void
Table::cell(std::uint64_t v)
{
    cell(format("%llu", (unsigned long long)v));
}

void
Table::cell(double v, int decimals)
{
    cell(format("%.*f", decimals, v));
}

void
Table::blank()
{
    cell(std::string("-"));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headerRow.size(), 0);
    for (size_t i = 0; i < headerRow.size(); ++i)
        widths[i] = headerRow[i].size();
    for (const auto &r : rows) {
        for (size_t i = 0; i < r.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    }

    auto emit_row = [&](const std::vector<std::string> &r,
                        std::string &out) {
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &text = i < r.size() ? r[i] : std::string();
            out += "| ";
            out += text;
            out.append(widths[i] - text.size() + 1, ' ');
        }
        out += "|\n";
    };

    std::string out;
    emit_row(headerRow, out);
    for (size_t i = 0; i < widths.size(); ++i) {
        out += "|";
        out.append(widths[i] + 2, '-');
    }
    out += "|\n";
    for (const auto &r : rows)
        emit_row(r, out);
    return out;
}

void
Table::print() const
{
    std::string s = render();
    std::fwrite(s.data(), 1, s.size(), stdout);
    std::fflush(stdout);
}

} // namespace vic
