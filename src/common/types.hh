/**
 * @file
 * Fundamental strongly-typed value types shared across the simulator.
 *
 * Virtual and physical addresses are distinct wrapper types so that the
 * compiler rejects the classic cache-simulator bug of indexing a
 * virtually indexed cache with a physical address (or tagging it with a
 * virtual one). Both wrap a 64-bit value; arithmetic helpers are spelled
 * out explicitly rather than via operator overloads so call sites stay
 * greppable.
 */

#ifndef VIC_COMMON_TYPES_HH
#define VIC_COMMON_TYPES_HH

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace vic
{

/** Simulated clock cycles. */
using Cycles = std::uint64_t;

/** Identifier of an address space (a Mach task, or the kernel). */
using SpaceId = std::uint32_t;

/** Identifier of a cache page ("cache colour"): index of the page-sized
 *  region of the cache that a virtual page maps onto. */
using CachePageId = std::uint32_t;

/** Identifier of a physical page frame. */
using FrameId = std::uint64_t;

/** A virtual address within some address space. */
struct VirtAddr
{
    std::uint64_t value = 0;

    constexpr VirtAddr() = default;
    constexpr explicit VirtAddr(std::uint64_t v) : value(v) {}

    constexpr auto operator<=>(const VirtAddr &) const = default;

    /** Byte offset added to this address. */
    constexpr VirtAddr plus(std::uint64_t bytes) const
    { return VirtAddr(value + bytes); }
};

/** A physical (machine) address. */
struct PhysAddr
{
    std::uint64_t value = 0;

    constexpr PhysAddr() = default;
    constexpr explicit PhysAddr(std::uint64_t v) : value(v) {}

    constexpr auto operator<=>(const PhysAddr &) const = default;

    /** Byte offset added to this address. */
    constexpr PhysAddr plus(std::uint64_t bytes) const
    { return PhysAddr(value + bytes); }
};

/** A (space, virtual address) pair: the globally unique name of a byte
 *  of virtual memory in the hierarchical address-space model. */
struct SpaceVa
{
    SpaceId space = 0;
    VirtAddr va;

    constexpr SpaceVa() = default;
    constexpr SpaceVa(SpaceId s, VirtAddr v) : space(s), va(v) {}

    constexpr auto operator<=>(const SpaceVa &) const = default;
};

/** Memory-system operations, exactly the six events of the paper's
 *  consistency model (Section 3.2). Purge and Flush are the two cache
 *  control operations exported by the hardware. */
enum class MemOp : std::uint8_t
{
    CpuRead,
    CpuWrite,
    DmaRead,   ///< device reads from the memory system (disk write)
    DmaWrite,  ///< device writes into the memory system (disk read)
    Purge,
    Flush,
};

/** Human-readable name of a MemOp. */
const char *memOpName(MemOp op);

/** Which of the two split caches a reference targets. The paper's
 *  implementation keeps independent consistency state per cache because
 *  the hardware does not keep the instruction and data caches coherent
 *  (Section 4.1). */
enum class CacheKind : std::uint8_t
{
    Data,
    Instruction,
};

/** Human-readable name of a CacheKind. */
const char *cacheKindName(CacheKind kind);

/**
 * Page protections that the MMU can enforce; the consistency algorithm
 * drives transitions by downgrading these (final stanza of Figure 1).
 *
 * Execute is separate from read (as on PA-RISC) because the machine
 * has split instruction and data caches whose consistency states are
 * independent: a page may be safe to load (its data-cache page is
 * present) yet unsafe to fetch instructions from (its instruction-
 * cache page is stale), and the protection hardware must be able to
 * trap exactly the unsafe kind of access.
 */
struct Protection
{
    bool read = false;
    bool write = false;
    bool execute = false;

    constexpr bool operator==(const Protection &) const = default;

    static constexpr Protection none() { return {}; }
    static constexpr Protection readOnly() { return {true, false, false}; }
    static constexpr Protection readWrite() { return {true, true, false}; }
    static constexpr Protection readExecute()
    { return {true, false, true}; }
    static constexpr Protection all() { return {true, true, true}; }

    /** The permissions allowed by both this and @p other. */
    constexpr Protection
    intersect(Protection other) const
    {
        return {read && other.read, write && other.write,
                execute && other.execute};
    }

    /** @return true iff no access at all is allowed. */
    constexpr bool isNone() const { return !read && !write && !execute; }
};

/** Short human-readable protection description ("r-x" style). */
std::string protectionName(Protection prot);

} // namespace vic

namespace std
{

template <>
struct hash<vic::VirtAddr>
{
    size_t operator()(const vic::VirtAddr &a) const noexcept
    { return std::hash<std::uint64_t>{}(a.value); }
};

template <>
struct hash<vic::PhysAddr>
{
    size_t operator()(const vic::PhysAddr &a) const noexcept
    { return std::hash<std::uint64_t>{}(a.value); }
};

template <>
struct hash<vic::SpaceVa>
{
    size_t
    operator()(const vic::SpaceVa &s) const noexcept
    {
        return std::hash<std::uint64_t>{}(
            (std::uint64_t(s.space) << 48) ^ s.va.value);
    }
};

} // namespace std

#endif // VIC_COMMON_TYPES_HH
