/**
 * @file
 * Plain-text table printer used by the bench binaries to emit rows in
 * the same layout as the paper's tables.
 */

#ifndef VIC_COMMON_TABLE_HH
#define VIC_COMMON_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vic
{

class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    void row();

    /** Append a string cell to the current row. */
    void cell(const std::string &text);

    /** Append an integer cell. */
    void cell(std::uint64_t v);

    /** Append a floating-point cell with @p decimals places. */
    void cell(double v, int decimals = 2);

    /** Append an empty cell. */
    void blank();

    /** Render the table with aligned columns. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

} // namespace vic

#endif // VIC_COMMON_TABLE_HH
