/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every workload generator and property test seeds its own Random so
 * that runs are bit-for-bit reproducible; nothing in the simulator uses
 * global randomness or wall-clock entropy.
 */

#ifndef VIC_COMMON_RANDOM_HH
#define VIC_COMMON_RANDOM_HH

#include <cstdint>

namespace vic
{

class Random
{
  public:
    /** Construct with a 64-bit seed; the seed is expanded with
     *  SplitMix64 so nearby seeds give unrelated streams. */
    explicit Random(std::uint64_t seed = 0x5eed);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform value in [0, bound); @p bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli draw: true with probability @p numer / @p denom. */
    bool chance(std::uint64_t numer, std::uint64_t denom);

    /** Uniform double in [0, 1). */
    double real();

  private:
    std::uint64_t state[4];
};

} // namespace vic

#endif // VIC_COMMON_RANDOM_HH
