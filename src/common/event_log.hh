/**
 * @file
 * Optional ring-buffer event log.
 *
 * When enabled, components append one-line descriptions of the
 * consistency-relevant events they perform (cache page flushes and
 * purges with their reasons, faults, DMA preparation, pageouts).
 * Disabled by default: the hot paths pay a single branch. Used by the
 * policy_explorer example's --trace option and by debugging sessions;
 * the tests pin the ring semantics.
 */

#ifndef VIC_COMMON_EVENT_LOG_HH
#define VIC_COMMON_EVENT_LOG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vic
{

class EventLog
{
  public:
    EventLog() = default;

    /** Start recording, keeping the most recent @p capacity events. */
    void
    enable(std::size_t capacity)
    {
        ring.assign(capacity, {});
        head = 0;
        total = 0;
        active = capacity > 0;
    }

    /** Stop recording and drop the buffer. */
    void
    disable()
    {
        ring.clear();
        active = false;
    }

    /** @return true iff events are being recorded. Check this before
     *  building an expensive message. */
    bool enabled() const { return active; }

    /** Append one event (no-op when disabled). */
    void
    log(std::string text)
    {
        if (!active)
            return;
        ring[head] = std::move(text);
        head = (head + 1) % ring.size();
        ++total;
    }

    /** Events ever logged (including overwritten ones). */
    std::uint64_t totalLogged() const { return total; }

    /** The most recent events, oldest first, at most @p n (and at
     *  most the ring capacity). */
    std::vector<std::string>
    recent(std::size_t n) const
    {
        std::vector<std::string> out;
        if (!active)
            return out;
        const std::size_t cap = ring.size();
        const std::size_t have =
            total < cap ? static_cast<std::size_t>(total) : cap;
        const std::size_t take = n < have ? n : have;
        for (std::size_t i = 0; i < take; ++i) {
            const std::size_t idx =
                (head + cap - take + i) % cap;
            out.push_back(ring[idx]);
        }
        return out;
    }

  private:
    std::vector<std::string> ring;
    std::size_t head = 0;
    std::uint64_t total = 0;
    bool active = false;
};

} // namespace vic

/**
 * Log one event with the message construction provably skipped when
 * tracing is off: @p expr is evaluated only after the single
 * enabled() branch passes, so a hot path never pays for building a
 * std::string it would immediately drop. Always prefer this (or an
 * explicit enabled() early-return) over calling log(format(...))
 * directly. @p evlog is evaluated twice; pass a cheap accessor such
 * as machine.events().
 */
#define VIC_EVLOG(evlog, expr)                                        \
    do {                                                              \
        if ((evlog).enabled())                                        \
            (evlog).log(expr);                                        \
    } while (0)

#endif // VIC_COMMON_EVENT_LOG_HH
