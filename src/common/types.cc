#include "common/types.hh"

#include "common/logging.hh"

namespace vic
{

const char *
memOpName(MemOp op)
{
    switch (op) {
      case MemOp::CpuRead: return "CPU-read";
      case MemOp::CpuWrite: return "CPU-write";
      case MemOp::DmaRead: return "DMA-read";
      case MemOp::DmaWrite: return "DMA-write";
      case MemOp::Purge: return "Purge";
      case MemOp::Flush: return "Flush";
    }
    vic_panic("invalid MemOp %d", static_cast<int>(op));
}

const char *
cacheKindName(CacheKind kind)
{
    switch (kind) {
      case CacheKind::Data: return "data";
      case CacheKind::Instruction: return "instruction";
    }
    vic_panic("invalid CacheKind %d", static_cast<int>(kind));
}

std::string
protectionName(Protection prot)
{
    std::string s = "---";
    if (prot.read)
        s[0] = 'r';
    if (prot.write)
        s[1] = 'w';
    if (prot.execute)
        s[2] = 'x';
    return s;
}

} // namespace vic
