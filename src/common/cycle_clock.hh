/**
 * @file
 * Global simulated cycle counter.
 *
 * Plays the role of the HP 9000/720's on-chip cycle counter used for
 * the paper's measurements: every component charges its modelled cost
 * here, and benches convert cycles to "elapsed seconds" at the paper's
 * 50 MHz clock rate.
 */

#ifndef VIC_COMMON_CYCLE_CLOCK_HH
#define VIC_COMMON_CYCLE_CLOCK_HH

#include "common/types.hh"

namespace vic
{

class CycleClock
{
  public:
    /** Current simulated time in cycles. */
    Cycles now() const { return current; }

    /** Charge @p n cycles. */
    void advance(Cycles n) { current += n; }

    /** Reset to zero (between workload runs). */
    void reset() { current = 0; }

  private:
    Cycles current = 0;
};

} // namespace vic

#endif // VIC_COMMON_CYCLE_CLOCK_HH
