/**
 * @file
 * Minimal JSON document model: build, serialise, parse.
 *
 * The experiment engine's bench artifacts must be byte-identical
 * between serial and parallel runs, so serialisation is fully
 * deterministic: object members keep insertion order, numbers are
 * stored as their literal token text (64-bit counters survive a
 * round trip untruncated), and doubles are rendered with the
 * shortest "%.15g"/"%.17g" form that parses back exactly. The parser
 * exists for artifact diffing and round-trip tests, not for hostile
 * input; it throws std::runtime_error with an offset on malformed
 * text.
 */

#ifndef VIC_COMMON_JSON_WRITER_HH
#define VIC_COMMON_JSON_WRITER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vic
{

class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    // --- constructors ---
    static JsonValue null();
    static JsonValue boolean(bool b);
    static JsonValue number(std::uint64_t n);
    static JsonValue number(std::int64_t n);
    static JsonValue number(double d);
    /** A number from its literal token (used by the parser). */
    static JsonValue numberToken(std::string token);
    static JsonValue str(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    // --- scalar access (Kind must match; panics otherwise) ---
    bool asBool() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    double asDouble() const;
    const std::string &asString() const;
    /** The literal number token as written. */
    const std::string &numberText() const;

    // --- array access ---
    void push(JsonValue v);
    const std::vector<JsonValue> &items() const;
    std::vector<JsonValue> &items();

    // --- object access (insertion-ordered) ---
    JsonValue &set(const std::string &key, JsonValue v);
    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;
    JsonValue *find(const std::string &key);
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;
    std::vector<std::pair<std::string, JsonValue>> &members();

    /** Serialise; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** Parse @p text; throws std::runtime_error on malformed input. */
    static JsonValue parse(const std::string &text);

    bool operator==(const JsonValue &other) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    /** Number token text, or string payload. */
    std::string scalar;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/** Escape @p s as a JSON string literal (with quotes). */
std::string jsonQuote(const std::string &s);

} // namespace vic

#endif // VIC_COMMON_JSON_WRITER_HH
