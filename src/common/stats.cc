#include "common/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vic
{

Counter &
StatSet::counter(const std::string &name)
{
    auto it = index.find(name);
    if (it != index.end())
        return *it->second;
    storage.emplace_back(name);
    Counter &c = storage.back();
    index.emplace(name, &c);
    return c;
}

std::uint64_t
StatSet::value(const std::string &name) const
{
    auto it = index.find(name);
    return it == index.end() ? 0 : it->second->value();
}

void
StatSet::clearAll()
{
    for (auto &c : storage)
        c.clear();
}

std::vector<const Counter *>
StatSet::all() const
{
    std::vector<const Counter *> out;
    out.reserve(storage.size());
    for (const auto &c : storage)
        out.push_back(&c);
    return out;
}

std::map<std::string, std::uint64_t>
StatSet::snapshot() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &c : storage)
        out.emplace(c.name(), c.value());
    return out;
}

std::string
StatSet::render(const std::string &prefix, bool include_zero) const
{
    std::vector<const Counter *> selected;
    for (const auto &c : storage) {
        if (c.name().rfind(prefix, 0) != 0)
            continue;
        if (c.value() == 0 && !include_zero)
            continue;
        selected.push_back(&c);
    }
    std::sort(selected.begin(), selected.end(),
              [](const Counter *a, const Counter *b) {
                  return a->name() < b->name();
              });
    std::string out;
    for (const Counter *c : selected) {
        out += format("%-36s %llu\n", c->name().c_str(),
                      (unsigned long long)c->value());
    }
    return out;
}

} // namespace vic
