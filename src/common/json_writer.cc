#include "common/json_writer.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/logging.hh"

namespace vic
{

// ----------------------------------------------------------------------
// Construction
// ----------------------------------------------------------------------

JsonValue
JsonValue::null()
{
    return JsonValue();
}

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::number(std::uint64_t n)
{
    return numberToken(format("%llu", (unsigned long long)n));
}

JsonValue
JsonValue::number(std::int64_t n)
{
    return numberToken(format("%lld", (long long)n));
}

JsonValue
JsonValue::number(double d)
{
    // Shortest decimal form that round-trips: %.15g covers most
    // doubles; fall back to %.17g (always exact) when it does not.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.15g", d);
    if (std::strtod(buf, nullptr) != d)
        std::snprintf(buf, sizeof(buf), "%.17g", d);
    return numberToken(buf);
}

JsonValue
JsonValue::numberToken(std::string token)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.scalar = std::move(token);
    return v;
}

JsonValue
JsonValue::str(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.scalar = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

// ----------------------------------------------------------------------
// Access
// ----------------------------------------------------------------------

bool
JsonValue::asBool() const
{
    vic_assert(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

std::uint64_t
JsonValue::asU64() const
{
    vic_assert(kind_ == Kind::Number, "JSON value is not a number");
    return std::strtoull(scalar.c_str(), nullptr, 10);
}

std::int64_t
JsonValue::asI64() const
{
    vic_assert(kind_ == Kind::Number, "JSON value is not a number");
    return std::strtoll(scalar.c_str(), nullptr, 10);
}

double
JsonValue::asDouble() const
{
    vic_assert(kind_ == Kind::Number, "JSON value is not a number");
    return std::strtod(scalar.c_str(), nullptr);
}

const std::string &
JsonValue::asString() const
{
    vic_assert(kind_ == Kind::String, "JSON value is not a string");
    return scalar;
}

const std::string &
JsonValue::numberText() const
{
    vic_assert(kind_ == Kind::Number, "JSON value is not a number");
    return scalar;
}

void
JsonValue::push(JsonValue v)
{
    vic_assert(kind_ == Kind::Array, "JSON value is not an array");
    array_.push_back(std::move(v));
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    vic_assert(kind_ == Kind::Array, "JSON value is not an array");
    return array_;
}

std::vector<JsonValue> &
JsonValue::items()
{
    vic_assert(kind_ == Kind::Array, "JSON value is not an array");
    return array_;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    vic_assert(kind_ == Kind::Object, "JSON value is not an object");
    for (auto &[k, existing] : object_) {
        if (k == key) {
            existing = std::move(v);
            return existing;
        }
    }
    object_.emplace_back(key, std::move(v));
    return object_.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

JsonValue *
JsonValue::find(const std::string &key)
{
    return const_cast<JsonValue *>(
        static_cast<const JsonValue *>(this)->find(key));
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    vic_assert(kind_ == Kind::Object, "JSON value is not an object");
    return object_;
}

std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members()
{
    vic_assert(kind_ == Kind::Object, "JSON value is not an object");
    return object_;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == other.bool_;
      case Kind::Number:
      case Kind::String:
        return scalar == other.scalar;
      case Kind::Array:
        return array_ == other.array_;
      case Kind::Object:
        return object_ == other.object_;
    }
    return false;
}

// ----------------------------------------------------------------------
// Serialisation
// ----------------------------------------------------------------------

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * d, ' ');
        }
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        out += scalar;
        break;
      case Kind::String:
        out += jsonQuote(scalar);
        break;
      case Kind::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += jsonQuote(object_[i].first);
            out += indent > 0 ? ": " : ":";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &t) : text(t) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos != text.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what) const
    {
        throw std::runtime_error(
            format("JSON parse error at offset %zu: %s", pos, what));
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(format("expected '%c'", c).c_str());
        ++pos;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = 0;
        while (w[n])
            ++n;
        if (text.compare(pos, n, w) != 0)
            return false;
        pos += n;
        return true;
    }

    std::string
    parseStringBody()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos + 4 > text.size())
                      fail("truncated \\u escape");
                  unsigned code = static_cast<unsigned>(std::strtoul(
                      text.substr(pos, 4).c_str(), nullptr, 16));
                  pos += 4;
                  // The writer only emits \u00xx control escapes;
                  // decode the Latin-1 range and pass anything wider
                  // through as UTF-8 is out of scope for artifacts.
                  if (code < 0x80) {
                      out += static_cast<char>(code);
                  } else {
                      out += static_cast<char>(0xc0 | (code >> 6));
                      out += static_cast<char>(0x80 | (code & 0x3f));
                  }
                  break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9') {
                ++pos;
                digits = true;
            }
        };
        eatDigits();
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            eatDigits();
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            eatDigits();
        }
        if (!digits)
            fail("malformed number");
        return JsonValue::numberToken(text.substr(start, pos - start));
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': {
              ++pos;
              JsonValue obj = JsonValue::object();
              if (peek() == '}') {
                  ++pos;
                  return obj;
              }
              while (true) {
                  skipWs();
                  std::string key = parseStringBody();
                  expect(':');
                  obj.set(key, parseValue());
                  char c = peek();
                  ++pos;
                  if (c == '}')
                      return obj;
                  if (c != ',')
                      fail("expected ',' or '}'");
              }
          }
          case '[': {
              ++pos;
              JsonValue arr = JsonValue::array();
              if (peek() == ']') {
                  ++pos;
                  return arr;
              }
              while (true) {
                  arr.push(parseValue());
                  char c = peek();
                  ++pos;
                  if (c == ']')
                      return arr;
                  if (c != ',')
                      fail("expected ',' or ']'");
              }
          }
          case '"':
            return JsonValue::str(parseStringBody());
          case 't':
            if (!consumeWord("true"))
                fail("bad literal");
            return JsonValue::boolean(true);
          case 'f':
            if (!consumeWord("false"))
                fail("bad literal");
            return JsonValue::boolean(false);
          case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            return JsonValue::null();
          default:
            return parseNumber();
        }
    }

    const std::string &text;
    std::size_t pos = 0;
};

} // anonymous namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace vic
