/**
 * @file
 * Fixed-width dynamic bit vector.
 *
 * The consistency algorithm keeps, per resident physical page, two bit
 * vectors indexed by cache page ("P[p].mapped" and "P[p].stale" in the
 * paper, Section 4.1). The number of cache pages is small (cache size /
 * page size, e.g. 64 for a 256 KB cache with 4 KB pages), so the hot
 * operations — bitwise OR, clear, find-first, population count — are a
 * handful of word instructions. That cheapness is itself one of the
 * paper's claims ("the data structures used by the algorithm lend
 * themselves to efficient state modification") and is measured by the
 * micro_ops bench.
 */

#ifndef VIC_COMMON_BITVECTOR_HH
#define VIC_COMMON_BITVECTOR_HH

#include <cstdint>
#include <vector>

namespace vic
{

class BitVector
{
  public:
    BitVector() = default;

    /** Construct a vector of @p nbits bits, all clear. */
    explicit BitVector(std::uint32_t nbits);

    /** Number of bits this vector holds. */
    std::uint32_t size() const { return numBits; }

    /** @return the value of bit @p idx. */
    bool test(std::uint32_t idx) const;

    /** Set bit @p idx. */
    void set(std::uint32_t idx);

    /** Clear bit @p idx. */
    void reset(std::uint32_t idx);

    /** Assign bit @p idx. */
    void assign(std::uint32_t idx, bool value);

    /** Clear all bits. */
    void clearAll();

    /** Bitwise OR @p other into this vector. Sizes must match. */
    void orWith(const BitVector &other);

    /** @return true iff any bit is set. */
    bool any() const;

    /** @return true iff no bit is set. */
    bool none() const { return !any(); }

    /** Number of set bits. */
    std::uint32_t count() const;

    /** Index of the first set bit; size() if none. */
    std::uint32_t findFirst() const;

    /** Index of the first clear bit; size() if none. */
    std::uint32_t findFirstClear() const;

    /** @return true iff exactly one bit is set. */
    bool exactlyOne() const { return count() == 1; }

    bool operator==(const BitVector &other) const = default;

  private:
    static constexpr std::uint32_t bitsPerWord = 64;

    std::uint32_t numBits = 0;
    std::vector<std::uint64_t> words;

    void checkIndex(std::uint32_t idx) const;
};

} // namespace vic

#endif // VIC_COMMON_BITVECTOR_HH
