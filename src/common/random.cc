#include "common/random.hh"

#include "common/logging.hh"

namespace vic
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Random::Random(std::uint64_t seed)
{
    for (auto &s : state)
        s = splitMix64(seed);
}

std::uint64_t
Random::next64()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

std::uint64_t
Random::below(std::uint64_t bound)
{
    vic_assert(bound != 0, "Random::below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Random::between(std::uint64_t lo, std::uint64_t hi)
{
    vic_assert(lo <= hi, "Random::between(%llu, %llu)",
               (unsigned long long)lo, (unsigned long long)hi);
    return lo + below(hi - lo + 1);
}

bool
Random::chance(std::uint64_t numer, std::uint64_t denom)
{
    vic_assert(denom != 0, "Random::chance denominator is zero");
    return below(denom) < numer;
}

double
Random::real()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

} // namespace vic
