/**
 * @file
 * Observation interface for memory-system transfers.
 *
 * The paper's correctness criterion is that "the memory system never
 * transfers a stale value to either the CPU or a device" (Section 3.1).
 * Every transfer that criterion talks about — CPU loads and instruction
 * fetches, CPU stores, device reads of memory (DMA-read) and device
 * writes into memory (DMA-write) — is reported through this interface
 * so the consistency oracle can validate it against a golden model.
 */

#ifndef VIC_COMMON_OBSERVER_HH
#define VIC_COMMON_OBSERVER_HH

#include <cstdint>

#include "common/types.hh"

namespace vic
{

class MemoryObserver
{
  public:
    virtual ~MemoryObserver() = default;

    /** CPU load observed @p observed at physical address @p pa. */
    virtual void cpuLoad(PhysAddr pa, std::uint32_t observed)
    { (void)pa; (void)observed; }

    /** CPU instruction fetch observed @p observed at @p pa. */
    virtual void cpuIFetch(PhysAddr pa, std::uint32_t observed)
    { (void)pa; (void)observed; }

    /** CPU store of @p value to @p pa (program order defines this as
     *  the newest value of @p pa). */
    virtual void cpuStore(PhysAddr pa, std::uint32_t value)
    { (void)pa; (void)value; }

    /** A DMA device wrote @p value into memory at @p pa. */
    virtual void dmaWrite(PhysAddr pa, std::uint32_t value)
    { (void)pa; (void)value; }

    /** A DMA device read @p observed from the memory system at @p pa. */
    virtual void dmaRead(PhysAddr pa, std::uint32_t observed)
    { (void)pa; (void)observed; }
};

} // namespace vic

#endif // VIC_COMMON_OBSERVER_HH
