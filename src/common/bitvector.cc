#include "common/bitvector.hh"

#include <bit>

#include "common/logging.hh"

namespace vic
{

BitVector::BitVector(std::uint32_t nbits)
    : numBits(nbits), words((nbits + bitsPerWord - 1) / bitsPerWord, 0)
{
}

void
BitVector::checkIndex(std::uint32_t idx) const
{
    vic_assert(idx < numBits, "bit index %u out of range (size %u)",
               idx, numBits);
}

bool
BitVector::test(std::uint32_t idx) const
{
    checkIndex(idx);
    return (words[idx / bitsPerWord] >> (idx % bitsPerWord)) & 1;
}

void
BitVector::set(std::uint32_t idx)
{
    checkIndex(idx);
    words[idx / bitsPerWord] |= std::uint64_t(1) << (idx % bitsPerWord);
}

void
BitVector::reset(std::uint32_t idx)
{
    checkIndex(idx);
    words[idx / bitsPerWord] &= ~(std::uint64_t(1) << (idx % bitsPerWord));
}

void
BitVector::assign(std::uint32_t idx, bool value)
{
    if (value)
        set(idx);
    else
        reset(idx);
}

void
BitVector::clearAll()
{
    for (auto &w : words)
        w = 0;
}

void
BitVector::orWith(const BitVector &other)
{
    vic_assert(numBits == other.numBits,
               "bit vector size mismatch (%u vs %u)", numBits,
               other.numBits);
    for (size_t i = 0; i < words.size(); ++i)
        words[i] |= other.words[i];
}

bool
BitVector::any() const
{
    for (auto w : words) {
        if (w)
            return true;
    }
    return false;
}

std::uint32_t
BitVector::count() const
{
    std::uint32_t n = 0;
    for (auto w : words)
        n += static_cast<std::uint32_t>(std::popcount(w));
    return n;
}

std::uint32_t
BitVector::findFirst() const
{
    for (size_t i = 0; i < words.size(); ++i) {
        if (words[i]) {
            return static_cast<std::uint32_t>(
                i * bitsPerWord +
                static_cast<std::uint32_t>(std::countr_zero(words[i])));
        }
    }
    return numBits;
}

std::uint32_t
BitVector::findFirstClear() const
{
    for (std::uint32_t i = 0; i < numBits; ++i) {
        if (!test(i))
            return i;
    }
    return numBits;
}

} // namespace vic
