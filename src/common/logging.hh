/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal split:
 * panic() is for simulator invariant violations (a bug in this code),
 * fatal() is for user errors (bad configuration), warn()/inform() are
 * advisory.
 */

#ifndef VIC_COMMON_LOGGING_HH
#define VIC_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace vic
{

/** Abort the simulation because an internal invariant was violated. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Exit the simulation because of a user/configuration error. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Print an advisory warning. */
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message. */
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a failed vic_assert and abort. */
[[noreturn]] void assertFailImpl(const char *file, int line,
                                 const char *cond, const char *msg);

} // namespace vic

#define vic_panic(...) ::vic::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define vic_fatal(...) ::vic::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define vic_warn(...) ::vic::warnImpl(__VA_ARGS__)
#define vic_inform(...) ::vic::informImpl(__VA_ARGS__)

/** Checked invariant: like assert but always compiled in, with a
 *  formatted message. */
#define vic_assert(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::vic::assertFailImpl(__FILE__, __LINE__, #cond,            \
                                  ::vic::format(__VA_ARGS__).c_str()); \
        }                                                               \
    } while (0)

#endif // VIC_COMMON_LOGGING_HH
