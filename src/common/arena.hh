/**
 * @file
 * Typed object arena with slot recycling.
 *
 * The page table (and anything else that churns small fixed-size
 * records) used to lean on node-based standard containers: every
 * enter/remove was a malloc/free, and a translate walk chased
 * pointers into whatever the allocator handed back. The arena
 * replaces that with chunked contiguous storage:
 *
 *  - alloc() pops the most recently released slot (LIFO keeps reuse
 *    hot in the host cache) or bumps into the current chunk;
 *  - release() recycles a slot without returning memory to the host;
 *  - pointers are stable for the arena's lifetime — chunks never
 *    move — which is exactly the guarantee the TLB's cached
 *    PageTableEntry handles need (tlb.hh file doc).
 *
 * Determinism: allocation order is a pure function of the call
 * sequence (no addresses, sizes or host state feed back into it), so
 * simulated behaviour cannot depend on the host allocator. Pointer
 * VALUES must still never reach simulated state or artifacts — the
 * determinism lint's scope covers the arena's clients (src/common,
 * src/mmu).
 */

#ifndef VIC_COMMON_ARENA_HH
#define VIC_COMMON_ARENA_HH

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace vic
{

template <typename T>
class Arena
{
  public:
    /** @p chunk_capacity objects per contiguous chunk. */
    explicit Arena(std::size_t chunk_capacity = 256)
        : chunkCap(chunk_capacity == 0 ? 1 : chunk_capacity)
    {}

    /** Take a slot (recycled LIFO, else bump-allocated) and
     *  value-initialise it as T{args...}. */
    template <typename... Args>
    T *
    alloc(Args &&...args)
    {
        T *slot;
        if (!freeSlots.empty()) {
            slot = freeSlots.back();
            freeSlots.pop_back();
        } else {
            if (chunks.empty() || usedInLast == chunkCap) {
                chunks.push_back(std::make_unique<T[]>(chunkCap));
                usedInLast = 0;
            }
            slot = &chunks.back()[usedInLast++];
        }
        *slot = T{std::forward<Args>(args)...};
        ++live;
        return slot;
    }

    /** Recycle @p p for a later alloc(); the memory stays owned by
     *  the arena (pointer stability for everything still live). */
    void
    release(T *p)
    {
        *p = T{};
        freeSlots.push_back(p);
        --live;
    }

    /** Currently allocated (not released) objects. */
    std::size_t liveCount() const { return live; }

    /** Slots ever bump-allocated, live or recycled (capacity probe). */
    std::size_t
    slotCount() const
    {
        if (chunks.empty())
            return 0;
        return (chunks.size() - 1) * chunkCap + usedInLast;
    }

  private:
    std::size_t chunkCap;
    std::size_t usedInLast = 0;
    std::size_t live = 0;
    std::vector<std::unique_ptr<T[]>> chunks;
    std::vector<T *> freeSlots;
};

} // namespace vic

#endif // VIC_COMMON_ARENA_HH
