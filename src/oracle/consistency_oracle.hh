/**
 * @file
 * Golden-model consistency checker.
 *
 * The paper's correctness criterion (Section 3.1): "a correctly
 * functioning memory system must never transfer stale data to either
 * the CPU or a DMA device." The oracle maintains a shadow copy of the
 * newest value of every physical word, updated in program order by CPU
 * stores and device writes, and checks every CPU load, instruction
 * fetch and device read against it. Any mismatch is a consistency
 * violation: a stale cache line was read, a DMA transfer was shadowed,
 * or a dirty write-back clobbered newer data.
 *
 * Tests run every workload under every policy with the oracle attached
 * and require zero violations — and run a deliberately broken policy
 * to prove the machine model actually produces (and the oracle
 * detects) the failure modes the paper describes.
 */

#ifndef VIC_ORACLE_CONSISTENCY_ORACLE_HH
#define VIC_ORACLE_CONSISTENCY_ORACLE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/observer.hh"
#include "common/types.hh"

namespace vic
{

class ConsistencyOracle : public MemoryObserver
{
  public:
    /** @param memory_bytes size of simulated physical memory. */
    explicit ConsistencyOracle(std::uint64_t memory_bytes);

    /** A detected stale transfer. */
    struct Violation
    {
        PhysAddr pa;
        std::uint32_t expected;
        std::uint32_t observed;
        std::string kind;  ///< "cpu-load", "cpu-ifetch" or "dma-read"
    };

    // MemoryObserver interface
    void cpuLoad(PhysAddr pa, std::uint32_t observed) override;
    void cpuIFetch(PhysAddr pa, std::uint32_t observed) override;
    void cpuStore(PhysAddr pa, std::uint32_t value) override;
    void dmaWrite(PhysAddr pa, std::uint32_t value) override;
    void dmaRead(PhysAddr pa, std::uint32_t observed) override;

    /** @return true iff no violation has been observed. */
    bool clean() const { return faults.empty(); }

    /** Violations recorded so far (capped at maxRecorded). */
    const std::vector<Violation> &violations() const { return faults; }

    /** Total number of violations (beyond the recording cap). */
    std::uint64_t violationCount() const { return totalViolations; }

    /** Number of transfers checked. */
    std::uint64_t checkedCount() const { return checked; }

    /** Forget all shadow state and violations. */
    void reset();

    /**
     * Install a callback invoked synchronously on every detected
     * violation (even past the recording cap). Trace-replay drivers
     * use it to attribute a violation to the event being replayed.
     * Pass nullptr to remove.
     */
    void setViolationHook(std::function<void(const Violation &)> hook)
    {
        violationHook = std::move(hook);
    }

  private:
    static constexpr std::size_t maxRecorded = 64;

    std::function<void(const Violation &)> violationHook;

    std::vector<std::uint32_t> shadow;
    std::vector<bool> defined;
    std::vector<Violation> faults;
    std::uint64_t totalViolations = 0;
    std::uint64_t checked = 0;

    std::uint64_t index(PhysAddr pa) const;
    void record(PhysAddr pa, std::uint32_t value);
    void check(PhysAddr pa, std::uint32_t observed, const char *kind);
};

} // namespace vic

#endif // VIC_ORACLE_CONSISTENCY_ORACLE_HH
