#include "oracle/consistency_oracle.hh"

#include "common/logging.hh"

namespace vic
{

ConsistencyOracle::ConsistencyOracle(std::uint64_t memory_bytes)
    : shadow(memory_bytes / 4, 0), defined(memory_bytes / 4, false)
{
}

std::uint64_t
ConsistencyOracle::index(PhysAddr pa) const
{
    vic_assert(pa.value % 4 == 0, "unaligned oracle access %llx",
               (unsigned long long)pa.value);
    const std::uint64_t idx = pa.value / 4;
    vic_assert(idx < shadow.size(), "oracle address %llx out of range",
               (unsigned long long)pa.value);
    return idx;
}

void
ConsistencyOracle::record(PhysAddr pa, std::uint32_t value)
{
    const std::uint64_t idx = index(pa);
    shadow[idx] = value;
    defined[idx] = true;
}

void
ConsistencyOracle::check(PhysAddr pa, std::uint32_t observed,
                         const char *kind)
{
    const std::uint64_t idx = index(pa);
    ++checked;
    if (!defined[idx])
        return;  // never written: nothing to compare against
    if (shadow[idx] == observed)
        return;
    ++totalViolations;
    const Violation v{pa, shadow[idx], observed, kind};
    if (faults.size() < maxRecorded)
        faults.push_back(v);
    if (violationHook)
        violationHook(v);
}

void
ConsistencyOracle::cpuLoad(PhysAddr pa, std::uint32_t observed)
{
    check(pa, observed, "cpu-load");
}

void
ConsistencyOracle::cpuIFetch(PhysAddr pa, std::uint32_t observed)
{
    check(pa, observed, "cpu-ifetch");
}

void
ConsistencyOracle::cpuStore(PhysAddr pa, std::uint32_t value)
{
    record(pa, value);
}

void
ConsistencyOracle::dmaWrite(PhysAddr pa, std::uint32_t value)
{
    record(pa, value);
}

void
ConsistencyOracle::dmaRead(PhysAddr pa, std::uint32_t observed)
{
    check(pa, observed, "dma-read");
}

void
ConsistencyOracle::reset()
{
    std::fill(shadow.begin(), shadow.end(), 0);
    std::fill(defined.begin(), defined.end(), false);
    faults.clear();
    totalViolations = 0;
    checked = 0;
}

} // namespace vic
