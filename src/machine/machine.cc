#include "machine/machine.hh"

#include "common/logging.hh"

namespace vic
{

Machine::Machine(const MachineParams &machine_params)
    : mparams(machine_params)
{
    mparams.check();

    physMem = std::make_unique<PhysicalMemory>(mparams.numFrames,
                                               mparams.pageBytes);
    pgTable = std::make_unique<PageTable>(mparams.pageBytes);
    for (std::uint32_t cpu = 0; cpu < mparams.numCpus; ++cpu) {
        tlbs.push_back(std::make_unique<Tlb>(
            mparams.tlbEntries, mparams.tlbMissPenalty, *pgTable,
            cycleClock, statSet));
        const std::string suffix =
            mparams.numCpus > 1 ? format("%u", cpu) : std::string();
        dataCaches.push_back(std::make_unique<Cache>(
            "dcache" + suffix, mparams.dcacheGeometry(),
            mparams.dcacheCosts, mparams.dcachePolicy, *physMem,
            cycleClock, statSet));
        instCaches.push_back(std::make_unique<Cache>(
            "icache" + suffix, mparams.icacheGeometry(),
            mparams.icacheCosts, WritePolicy::WriteBack, *physMem,
            cycleClock, statSet));
    }
    dmaEngine = std::make_unique<DmaEngine>(mparams.dmaCosts, *physMem,
                                            cycleClock, statSet);
    dmaEngine->setEventLog(&eventLog);
    dmaEngine->setBeatBytes(mparams.dcacheLineBytes);
    diskDev = std::make_unique<Disk>(mparams.pageBytes,
                                     mparams.diskAccessCycles, *dmaEngine,
                                     cycleClock, statSet);

    if (mparams.dmaSnoops) {
        for (auto &c : dataCaches)
            dmaEngine->attachSnoopedCache(c.get());
        for (auto &c : instCaches)
            dmaEngine->attachSnoopedCache(c.get());
    }
}

void
Machine::tlbShootdownPage(SpaceVa key)
{
    for (auto &t : tlbs)
        t->invalidatePage(key);
}

void
Machine::tlbShootdownSpace(SpaceId space)
{
    for (auto &t : tlbs)
        t->invalidateSpace(space);
}

void
Machine::coherencePrepare(std::uint32_t cpu, CacheKind kind,
                          PhysAddr pa, bool is_write)
{
    if (mparams.numCpus < 2 || kind != CacheKind::Data)
        return;
    const PhysAddr line(dcache(cpu).geometry().lineBase(pa.value));
    bool intervened = false;
    for (std::uint32_t peer = 0; peer < mparams.numCpus; ++peer) {
        if (peer == cpu)
            continue;
        Cache &pc = dcache(peer);
        // The newest copy may be dirty in a peer: write it back so
        // the local fill (from memory) is current.
        intervened |= pc.snoopWriteBackLine(line);
        if (is_write) {
            // Write-invalidate: peers must refetch after our write.
            pc.snoopInvalidateLine(line);
        }
    }
    if (intervened)
        cycleClock.advance(mparams.snoopPenalty);
}

void
Machine::setObserver(MemoryObserver *obs)
{
    memObserver = obs;
    dmaEngine->setObserver(obs);
}

} // namespace vic
