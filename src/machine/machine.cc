#include "machine/machine.hh"

#include "common/logging.hh"

namespace vic
{

Machine::Machine(const MachineParams &machine_params)
    : mparams(machine_params)
{
    mparams.check();

    physMem = std::make_unique<PhysicalMemory>(mparams.numFrames,
                                               mparams.pageBytes);
    pgTable = std::make_unique<PageTable>(mparams.pageBytes);
    for (std::uint32_t cpu = 0; cpu < mparams.numCpus; ++cpu) {
        tlbs.push_back(std::make_unique<Tlb>(
            mparams.tlbEntries, mparams.tlbMissPenalty, *pgTable,
            cycleClock, statSet));
        const std::string suffix =
            mparams.numCpus > 1 ? format("%u", cpu) : std::string();
        dataCaches.push_back(std::make_unique<Cache>(
            "dcache" + suffix, mparams.dcacheGeometry(),
            mparams.dcacheCosts, mparams.dcachePolicy, *physMem,
            cycleClock, statSet));
        instCaches.push_back(std::make_unique<Cache>(
            "icache" + suffix, mparams.icacheGeometry(),
            mparams.icacheCosts, WritePolicy::WriteBack, *physMem,
            cycleClock, statSet));
    }
    dmaEngine = std::make_unique<DmaEngine>(mparams.dmaCosts, *physMem,
                                            cycleClock, statSet);
    dmaEngine->setEventLog(&eventLog);
    dmaEngine->setBeatBytes(mparams.dcacheLineBytes);
    diskDev = std::make_unique<Disk>(mparams.pageBytes,
                                     mparams.diskAccessCycles, *dmaEngine,
                                     cycleClock, statSet);

    if (mparams.dmaSnoops) {
        for (auto &c : dataCaches)
            dmaEngine->attachSnoopedCache(c.get());
        for (auto &c : instCaches)
            dmaEngine->attachSnoopedCache(c.get());
    }

    // MESI bus: per-CPU data caches always attach; instruction caches
    // join as read-only ports when ifetch coherence is selected.
    const bool mesi =
        mparams.numCpus > 1 &&
        mparams.cpuCoherence == MachineParams::CpuCoherence::Mesi;
    if (mesi || mparams.ifetchCoherence) {
        cohBus = std::make_unique<CoherenceBus>(mparams.snoopPenalty,
                                                cycleClock, statSet);
        for (auto &c : dataCaches)
            cohBus->attach(c.get());
        if (mparams.ifetchCoherence)
            for (auto &c : instCaches)
                cohBus->attach(c.get());
    }
    if (mparams.synonymCoherence) {
        for (auto &c : dataCaches)
            c->enableSelfSnoop(mparams.snoopPenalty);
        for (auto &c : instCaches)
            c->enableSelfSnoop(mparams.snoopPenalty);
    }
}

void
Machine::tlbShootdownPage(SpaceVa key)
{
    for (auto &t : tlbs)
        t->invalidatePage(key);
}

void
Machine::tlbShootdownSpace(SpaceId space)
{
    for (auto &t : tlbs)
        t->invalidateSpace(space);
}

void
Machine::setObserver(MemoryObserver *obs)
{
    memObserver = obs;
    dmaEngine->setObserver(obs);
}

} // namespace vic
