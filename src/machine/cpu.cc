#include "machine/cpu.hh"

#include "common/logging.hh"

namespace vic
{

namespace
{

/** A single access may legitimately fault a handful of times (mapping
 *  fault, then consistency faults as state transitions cascade); more
 *  than this means the OS layer is livelocked. */
constexpr int maxFaultRetries = 8;

} // anonymous namespace

Cpu::Cpu(Machine &m, std::uint32_t cpu_id)
    : mach(m), cpuId(cpu_id), tlbRef(m.tlb(cpu_id)),
      dcacheRef(m.dcache(cpu_id)), icacheRef(m.icache(cpu_id)),
      pageOffsetMask(m.pageBytes() - 1), pageBytesC(m.pageBytes())
{
    vic_assert(cpu_id < m.numCpus(), "cpu id %u out of range", cpu_id);
}

bool
Cpu::deliver(const Fault &fault)
{
    ++faultsTaken;
    mach.clock().advance(mach.params().trapCycles);
    if (!faultHandler) {
        vic_panic("fault with no handler: %s at space=%u va=%llx",
                  accessTypeName(fault.access), fault.address.space,
                  (unsigned long long)fault.address.va.value);
    }
    return faultHandler(fault);
}

std::uint32_t
Cpu::accessMapped(AccessType type, VirtAddr va, std::uint32_t store_value,
                  PageTableEntry *pte)
{
    // Account stage, translation side: referenced/modified through the
    // TLB's mutable handle — no page-table walk.
    pte->referenced = true;
    const PhysAddr pa(pte->frame * pageBytesC +
                      (va.value & pageOffsetMask));
    MemoryObserver *obs = mach.observer();

    switch (type) {
      case AccessType::Load: {
          // Coherence is the cache's own job now: a miss issues a bus
          // read that snoops the peers (coherence.hh); a hit is silent
          // exactly as real MESI hardware is.
          std::uint32_t v;
          if (!dcacheRef.tryReadHit(va, pa, v))
              v = dcacheRef.read(va, pa);
          if (obs && observerDue())
              obs->cpuLoad(pa, v);
          return v;
      }
      case AccessType::IFetch: {
          std::uint32_t v;
          if (!icacheRef.tryReadHit(va, pa, v))
              v = icacheRef.read(va, pa);
          if (obs && observerDue())
              obs->cpuIFetch(pa, v);
          return v;
      }
      case AccessType::Store: {
          pte->modified = true;
          // Observer sees the store before the cache commits it (the
          // oracle's shadow memory must be current when the written
          // line later leaves the cache). A Shared-line hit falls out
          // of tryWriteHit into write(), which broadcasts the upgrade.
          if (obs && observerDue())
              obs->cpuStore(pa, store_value);
          if (!dcacheRef.tryWriteHit(va, pa, store_value))
              dcacheRef.write(va, pa, store_value);
          return 0;
      }
    }
    vic_panic("unreachable access type");
}

std::uint32_t
Cpu::accessSlow(AccessType type, VirtAddr va, std::uint32_t store_value,
                PageTableEntry *pte)
{
    const SpaceVa key(currentSpace, va);

    for (int attempt = 0; attempt < maxFaultRetries; ++attempt) {
        // Attempt 0 reuses the translation the fast path already did —
        // exactly one TLB lookup per attempt, as before the split.
        if (attempt > 0)
            pte = tlbRef.translate(key);

        if (pte != nullptr && protPermits(pte->prot, type))
            return accessMapped(type, va, store_value, pte);

        Fault fault;
        fault.address = key;
        fault.access = type;
        fault.type = pte == nullptr ? FaultType::Unmapped
                                    : FaultType::Protection;
        if (!deliver(fault)) {
            vic_panic("unrecoverable %s fault at space=%u va=%llx",
                      accessTypeName(type), key.space,
                      (unsigned long long)va.value);
        }
    }
    vic_panic("access livelock: %d faults at space=%u va=%llx",
              maxFaultRetries, key.space, (unsigned long long)va.value);
}

std::uint32_t
Cpu::access(AccessType type, VirtAddr va, std::uint32_t store_value)
{
    vic_assert(va.value % 4 == 0, "unaligned CPU access va=%llx",
               (unsigned long long)va.value);
    // Translate + protect stages; the overwhelmingly common outcome
    // (mapped, permitted) continues straight-line into accessMapped.
    PageTableEntry *pte = tlbRef.translate(SpaceVa(currentSpace, va));
    if (pte != nullptr && protPermits(pte->prot, type)) [[likely]]
        return accessMapped(type, va, store_value, pte);
    return accessSlow(type, va, store_value, pte);
}

std::uint32_t
Cpu::load(VirtAddr va)
{
    return access(AccessType::Load, va, 0);
}

void
Cpu::store(VirtAddr va, std::uint32_t value)
{
    access(AccessType::Store, va, value);
}

std::uint32_t
Cpu::ifetch(VirtAddr va)
{
    return access(AccessType::IFetch, va, 0);
}

void
Cpu::run(const Op *ops, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        access(ops[i].type, ops[i].va, ops[i].value);
}

void
Cpu::loadRange(VirtAddr base, std::uint32_t count,
               std::uint32_t stride_bytes)
{
    for (std::uint32_t i = 0; i < count; ++i)
        access(AccessType::Load,
               base.plus(std::uint64_t(i) * stride_bytes), 0);
}

void
Cpu::storeRange(VirtAddr base, std::uint32_t count,
                std::uint32_t stride_bytes, std::uint32_t seed,
                std::uint32_t seed_step)
{
    for (std::uint32_t i = 0; i < count; ++i)
        access(AccessType::Store,
               base.plus(std::uint64_t(i) * stride_bytes),
               seed + i * seed_step);
}

void
Cpu::ifetchRange(VirtAddr base, std::uint32_t count,
                 std::uint32_t stride_bytes)
{
    for (std::uint32_t i = 0; i < count; ++i)
        access(AccessType::IFetch,
               base.plus(std::uint64_t(i) * stride_bytes), 0);
}

} // namespace vic
