#include "machine/cpu.hh"

#include "common/logging.hh"

namespace vic
{

namespace
{

/** A single access may legitimately fault a handful of times (mapping
 *  fault, then consistency faults as state transitions cascade); more
 *  than this means the OS layer is livelocked. */
constexpr int maxFaultRetries = 8;

bool
permits(Protection prot, AccessType type)
{
    switch (type) {
      case AccessType::Load: return prot.read;
      case AccessType::Store: return prot.write;
      case AccessType::IFetch: return prot.execute;
    }
    return false;
}

} // anonymous namespace

Cpu::Cpu(Machine &m, std::uint32_t cpu_id) : mach(m), cpuId(cpu_id)
{
    vic_assert(cpu_id < m.numCpus(), "cpu id %u out of range", cpu_id);
}

bool
Cpu::deliver(const Fault &fault)
{
    ++faultsTaken;
    mach.clock().advance(mach.params().trapCycles);
    if (!faultHandler) {
        vic_panic("fault with no handler: %s at space=%u va=%llx",
                  accessTypeName(fault.access), fault.address.space,
                  (unsigned long long)fault.address.va.value);
    }
    return faultHandler(fault);
}

std::uint32_t
Cpu::access(AccessType type, VirtAddr va, std::uint32_t store_value)
{
    vic_assert(va.value % 4 == 0, "unaligned CPU access va=%llx",
               (unsigned long long)va.value);
    const SpaceVa key(currentSpace, va);

    for (int attempt = 0; attempt < maxFaultRetries; ++attempt) {
        const PageTableEntry *pte = mach.tlb(cpuId).translate(key);
        Fault fault;
        fault.address = key;
        fault.access = type;

        if (!pte) {
            fault.type = FaultType::Unmapped;
        } else if (!permits(pte->prot, type)) {
            fault.type = FaultType::Protection;
        } else {
            PageTableEntry *mut = mach.pageTable().lookupMutable(key);
            mut->referenced = true;
            if (isWrite(type))
                mut->modified = true;

            const std::uint64_t offset =
                va.value & (mach.pageBytes() - 1);
            const PhysAddr pa =
                mach.frameAddr(pte->frame, offset);
            const CacheKind kind = cacheKindOf(type);
            mach.coherencePrepare(cpuId, kind, pa, isWrite(type));
            Cache &cache = mach.cacheFor(kind, cpuId);
            MemoryObserver *obs = mach.observer();

            switch (type) {
              case AccessType::Load: {
                  std::uint32_t v = cache.read(va, pa);
                  if (obs)
                      obs->cpuLoad(pa, v);
                  return v;
              }
              case AccessType::IFetch: {
                  std::uint32_t v = cache.read(va, pa);
                  if (obs)
                      obs->cpuIFetch(pa, v);
                  return v;
              }
              case AccessType::Store: {
                  if (obs)
                      obs->cpuStore(pa, store_value);
                  cache.write(va, pa, store_value);
                  return 0;
              }
            }
            vic_panic("unreachable access type");
        }

        if (!deliver(fault)) {
            vic_panic("unrecoverable %s fault at space=%u va=%llx",
                      accessTypeName(type), key.space,
                      (unsigned long long)va.value);
        }
    }
    vic_panic("access livelock: %d faults at space=%u va=%llx",
              maxFaultRetries, key.space, (unsigned long long)va.value);
}

std::uint32_t
Cpu::load(VirtAddr va)
{
    return access(AccessType::Load, va, 0);
}

void
Cpu::store(VirtAddr va, std::uint32_t value)
{
    access(AccessType::Store, va, value);
}

std::uint32_t
Cpu::ifetch(VirtAddr va)
{
    return access(AccessType::IFetch, va, 0);
}

} // namespace vic
