#include "machine/machine_params.hh"

#include "common/logging.hh"

namespace vic
{

MachineParams
MachineParams::hp720()
{
    MachineParams p;
    // The 720's instruction cache purges in constant time regardless of
    // contents (Section 5.1): model with a uniform per-line op cost.
    p.icacheCosts.uniformOpCost = true;
    // "the 720 appears to purge no more quickly than it flushes"
    // (Section 5.1): identical present/absent costs for both ops is the
    // default in CacheCosts.
    return p;
}

void
MachineParams::check() const
{
    if (numFrames == 0)
        vic_fatal("machine needs at least one physical frame");
    if (pageBytes < dcacheLineBytes || pageBytes < icacheLineBytes)
        vic_fatal("page smaller than a cache line");
    if (clockHz <= 0)
        vic_fatal("clock rate must be positive");
    if (numCpus == 0)
        vic_fatal("machine needs at least one CPU");
    if (numCpus > 1 && cpuCoherence == CpuCoherence::Mesi &&
        dcachePolicy != WritePolicy::WriteBack)
        vic_fatal("MESI coherence requires write-back data caches");
    if (ifetchCoherence && numCpus > 1 &&
        cpuCoherence == CpuCoherence::None)
        vic_fatal("ifetch coherence needs the MESI bus on a "
                  "multiprocessor");
}

CacheGeometry
MachineParams::dcacheGeometry() const
{
    return CacheGeometry(dcacheBytes, dcacheLineBytes, pageBytes,
                         dcacheWays, dcacheIndexing);
}

CacheGeometry
MachineParams::icacheGeometry() const
{
    return CacheGeometry(icacheBytes, icacheLineBytes, pageBytes,
                         icacheWays, icacheIndexing);
}

} // namespace vic
