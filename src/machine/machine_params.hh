/**
 * @file
 * Machine configuration.
 *
 * The default configuration is a scaled-down HP 9000 Series 700 Model
 * 720: separate direct-mapped, virtually indexed, physically tagged
 * instruction and data caches; write-back data cache; DMA that does not
 * snoop; 50 MHz clock. Cache capacities are smaller than the real
 * machine's (64 KB instead of 256 KB data / 128 KB instruction) so the
 * synthetic workloads exercise capacity effects at their scaled size;
 * the number of cache colours (cache pages) stays well above one, which
 * is what the consistency problem depends on. Benches that sweep
 * architecture variants (Section 3.3) override individual fields.
 */

#ifndef VIC_MACHINE_MACHINE_PARAMS_HH
#define VIC_MACHINE_MACHINE_PARAMS_HH

#include <cstdint>

#include "cache/cache.hh"
#include "cache/cache_geometry.hh"
#include "common/types.hh"
#include "dma/dma_engine.hh"

namespace vic
{

struct MachineParams
{
    // --- physical memory ---
    /** 2 MB at 4 KB pages: small enough that the workloads cycle
     *  physical pages through the free list (as the paper's real
     *  workloads did on a loaded machine), which is what makes
     *  new-mapping consistency work visible. */
    std::uint64_t numFrames = 512;
    std::uint32_t pageBytes = 4096;

    // --- data cache ---
    std::uint64_t dcacheBytes = 64 * 1024;
    std::uint32_t dcacheLineBytes = 32;
    std::uint32_t dcacheWays = 1;
    Indexing dcacheIndexing = Indexing::Virtual;
    WritePolicy dcachePolicy = WritePolicy::WriteBack;
    CacheCosts dcacheCosts = {};

    // --- instruction cache ---
    std::uint64_t icacheBytes = 64 * 1024;
    std::uint32_t icacheLineBytes = 32;
    std::uint32_t icacheWays = 1;
    Indexing icacheIndexing = Indexing::Virtual;
    CacheCosts icacheCosts = {};  ///< uniformOpCost set in hp720()

    // --- TLB ---
    std::uint32_t tlbEntries = 96;
    Cycles tlbMissPenalty = 20;

    // --- traps ---
    Cycles trapCycles = 150;  ///< kernel entry/exit around a fault
    /** Software bookkeeping charged per pmap consistency invocation
     *  (bit-vector updates, protection walks). */
    Cycles pmapOverheadCycles = 40;

    // --- DMA and disk ---
    DmaCosts dmaCosts = {};
    Cycles diskAccessCycles = 2500;
    bool dmaSnoops = false;  ///< Section 3.3 coherent-DMA variant

    // --- multiprocessing ---
    /** Number of CPUs, each with private I/D caches. With more than
     *  one, the data caches are kept coherent per cpuCoherence,
     *  modelling the Section 3.3 "cache-coherent multiprocessor" in
     *  which equivalent cache pages across processors form a
     *  hardware-consistent set. */
    std::uint32_t numCpus = 1;
    /** Inter-cache CPU coherence protocol (multiprocessors only). */
    enum class CpuCoherence : std::uint8_t
    {
        None, ///< caches drift — software must manage them (testing)
        Mesi, ///< write-invalidate snooping bus with MESI line states
    };
    CpuCoherence cpuCoherence = CpuCoherence::Mesi;
    /** Bus cycles charged per cross-cache snoop intervention. */
    Cycles snoopPenalty = 10;
    /** Reverse-lookup synonym coherence: each cache self-snoops its
     *  other candidate sets at fill time so unaligned aliases cannot
     *  hold two copies of a physical line (arXiv 2108.00444). Part of
     *  the "no software consistency ops" hardware configuration. */
    bool synonymCoherence = false;
    /** Put the instruction caches on the coherence bus as read-only
     *  ports, so stores invalidate stale instruction copies in
     *  hardware instead of via software flush/purge pairs. */
    bool ifetchCoherence = false;

    /** True iff CPU/CPU conflicting accesses through *different*
     *  caches are kept coherent by hardware under these parameters. */
    bool
    providesCpuCoherence() const
    {
        return numCpus < 2 || cpuCoherence == CpuCoherence::Mesi;
    }

    // --- clock ---
    double clockHz = 50e6;  ///< Model 720: 50 MHz

    /** The default scaled-down Model 720 configuration. */
    static MachineParams hp720();

    /** Validate invariants (fatal on user error). */
    void check() const;

    /** Data cache geometry implied by these parameters. */
    CacheGeometry dcacheGeometry() const;

    /** Instruction cache geometry implied by these parameters. */
    CacheGeometry icacheGeometry() const;
};

} // namespace vic

#endif // VIC_MACHINE_MACHINE_PARAMS_HH
