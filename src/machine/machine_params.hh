/**
 * @file
 * Machine configuration.
 *
 * The default configuration is a scaled-down HP 9000 Series 700 Model
 * 720: separate direct-mapped, virtually indexed, physically tagged
 * instruction and data caches; write-back data cache; DMA that does not
 * snoop; 50 MHz clock. Cache capacities are smaller than the real
 * machine's (64 KB instead of 256 KB data / 128 KB instruction) so the
 * synthetic workloads exercise capacity effects at their scaled size;
 * the number of cache colours (cache pages) stays well above one, which
 * is what the consistency problem depends on. Benches that sweep
 * architecture variants (Section 3.3) override individual fields.
 */

#ifndef VIC_MACHINE_MACHINE_PARAMS_HH
#define VIC_MACHINE_MACHINE_PARAMS_HH

#include <cstdint>

#include "cache/cache.hh"
#include "cache/cache_geometry.hh"
#include "common/types.hh"
#include "dma/dma_engine.hh"

namespace vic
{

struct MachineParams
{
    // --- physical memory ---
    /** 2 MB at 4 KB pages: small enough that the workloads cycle
     *  physical pages through the free list (as the paper's real
     *  workloads did on a loaded machine), which is what makes
     *  new-mapping consistency work visible. */
    std::uint64_t numFrames = 512;
    std::uint32_t pageBytes = 4096;

    // --- data cache ---
    std::uint64_t dcacheBytes = 64 * 1024;
    std::uint32_t dcacheLineBytes = 32;
    std::uint32_t dcacheWays = 1;
    Indexing dcacheIndexing = Indexing::Virtual;
    WritePolicy dcachePolicy = WritePolicy::WriteBack;
    CacheCosts dcacheCosts = {};

    // --- instruction cache ---
    std::uint64_t icacheBytes = 64 * 1024;
    std::uint32_t icacheLineBytes = 32;
    std::uint32_t icacheWays = 1;
    Indexing icacheIndexing = Indexing::Virtual;
    CacheCosts icacheCosts = {};  ///< uniformOpCost set in hp720()

    // --- TLB ---
    std::uint32_t tlbEntries = 96;
    Cycles tlbMissPenalty = 20;

    // --- traps ---
    Cycles trapCycles = 150;  ///< kernel entry/exit around a fault
    /** Software bookkeeping charged per pmap consistency invocation
     *  (bit-vector updates, protection walks). */
    Cycles pmapOverheadCycles = 40;

    // --- DMA and disk ---
    DmaCosts dmaCosts = {};
    Cycles diskAccessCycles = 2500;
    bool dmaSnoops = false;  ///< Section 3.3 coherent-DMA variant

    // --- multiprocessing ---
    /** Number of CPUs, each with private I/D caches. With more than
     *  one, the data caches are kept coherent by a write-invalidate
     *  snooping protocol (physical tags), modelling the Section 3.3
     *  "cache-coherent multiprocessor" in which equivalent cache
     *  pages across processors form a hardware-consistent set. */
    std::uint32_t numCpus = 1;
    /** Bus cycles charged per cross-cache snoop intervention. */
    Cycles snoopPenalty = 10;

    // --- clock ---
    double clockHz = 50e6;  ///< Model 720: 50 MHz

    /** The default scaled-down Model 720 configuration. */
    static MachineParams hp720();

    /** Validate invariants (fatal on user error). */
    void check() const;

    /** Data cache geometry implied by these parameters. */
    CacheGeometry dcacheGeometry() const;

    /** Instruction cache geometry implied by these parameters. */
    CacheGeometry icacheGeometry() const;
};

} // namespace vic

#endif // VIC_MACHINE_MACHINE_PARAMS_HH
