/**
 * @file
 * Simulated CPU.
 *
 * Issues loads, stores and instruction fetches against the machine:
 * TLB translation (parallel with cache indexing, so a TLB hit is free),
 * protection check, then access through the data or instruction cache.
 * A denied access traps to the registered fault handler (the OS layer)
 * and is retried — this trap-and-retry loop is the mechanism by which
 * the consistency algorithm interposes on exactly the accesses that
 * need cache state transitions.
 */

#ifndef VIC_MACHINE_CPU_HH
#define VIC_MACHINE_CPU_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "machine/machine.hh"
#include "mmu/fault.hh"

namespace vic
{

class Cpu
{
  public:
    /** Fault handler installed by the OS. Returns true if the access
     *  should be retried, false if it must abort (a workload bug). */
    using FaultHandler = std::function<bool(const Fault &)>;

    /** @param cpu_id which of the machine's CPUs this is (selects the
     *  private cache pair). */
    explicit Cpu(Machine &m, std::uint32_t cpu_id = 0);

    Machine &machine() { return mach; }

    std::uint32_t id() const { return cpuId; }

    /** Install the OS fault handler. */
    void setFaultHandler(FaultHandler handler)
    { faultHandler = std::move(handler); }

    /** Switch the current address space (context switch). */
    void setSpace(SpaceId space) { currentSpace = space; }

    SpaceId space() const { return currentSpace; }

    /** Load the aligned word at @p va in the current space. */
    std::uint32_t load(VirtAddr va);

    /** Store @p value to the aligned word at @p va. */
    void store(VirtAddr va, std::uint32_t value);

    /** Fetch the instruction word at @p va (goes through the
     *  instruction cache). */
    std::uint32_t ifetch(VirtAddr va);

    /** Model @p n cycles of register-only computation. */
    void compute(Cycles n) { mach.clock().advance(n); }

    /** Total faults taken (for tests). */
    std::uint64_t faultCount() const { return faultsTaken; }

  private:
    Machine &mach;
    std::uint32_t cpuId;
    SpaceId currentSpace = 0;
    FaultHandler faultHandler;
    std::uint64_t faultsTaken = 0;

    /** Core access path shared by load/store/ifetch. */
    std::uint32_t access(AccessType type, VirtAddr va,
                         std::uint32_t store_value);

    /** Deliver a fault; @return true to retry. */
    bool deliver(const Fault &fault);
};

} // namespace vic

#endif // VIC_MACHINE_CPU_HH
