/**
 * @file
 * Simulated CPU.
 *
 * Issues loads, stores and instruction fetches against the machine
 * through the staged access pipeline (DESIGN.md "Access pipeline"):
 *
 *   translate -> protect -> index -> tag-check -> account
 *
 * The common case — TLB hit, protection allows, cache line present —
 * runs straight-line through pre-resolved component references with a
 * single clock advance and no page-table walk (the TLB hands back a
 * mutable PTE handle, so referenced/modified bits are set directly).
 * Everything else (unmapped pages, protection traps, cache misses,
 * multiprocessor coherence, DMA busy-bits) falls back to the slow
 * path, whose trap-and-retry loop is the mechanism by which the
 * consistency algorithm interposes on exactly the accesses that need
 * cache state transitions.
 *
 * Observer hooks sit behind a null check plus an optional sampling
 * period (Machine::setObserverSampling), so observability costs one
 * predictable branch when off.
 *
 * A batched API (run(), loadRange(), storeRange(), ifetchRange())
 * issues many accesses per call — semantically identical to a loop of
 * load()/store()/ifetch() (same stats, cycles, faults, observer
 * callbacks, in the same order) while amortizing per-call dispatch;
 * the OS kernel and the mc executor drive it.
 */

#ifndef VIC_MACHINE_CPU_HH
#define VIC_MACHINE_CPU_HH

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "machine/machine.hh"
#include "mmu/fault.hh"

namespace vic
{

class Cpu
{
  public:
    /** Fault handler installed by the OS. Returns true if the access
     *  should be retried, false if it must abort (a workload bug). */
    using FaultHandler = std::function<bool(const Fault &)>;

    /** @param cpu_id which of the machine's CPUs this is (selects the
     *  private cache pair). */
    explicit Cpu(Machine &m, std::uint32_t cpu_id = 0);

    Machine &machine() { return mach; }

    std::uint32_t id() const { return cpuId; }

    /** Install the OS fault handler. */
    void setFaultHandler(FaultHandler handler)
    { faultHandler = std::move(handler); }

    /** Switch the current address space (context switch). */
    void setSpace(SpaceId space) { currentSpace = space; }

    SpaceId space() const { return currentSpace; }

    /** Load the aligned word at @p va in the current space. */
    std::uint32_t load(VirtAddr va);

    /** Store @p value to the aligned word at @p va. */
    void store(VirtAddr va, std::uint32_t value);

    /** Fetch the instruction word at @p va (goes through the
     *  instruction cache). */
    std::uint32_t ifetch(VirtAddr va);

    /** One decoded operation of the batched access API. */
    struct Op
    {
        AccessType type = AccessType::Load;
        VirtAddr va;
        std::uint32_t value = 0; ///< store data; ignored otherwise
    };

    /** Issue @p n operations back-to-back through the pipeline. */
    void run(const Op *ops, std::size_t n);

    /** Issue @p count loads at @p base, @p base + @p stride_bytes, ... */
    void loadRange(VirtAddr base, std::uint32_t count,
                   std::uint32_t stride_bytes);

    /** Issue @p count stores at @p base + i * @p stride_bytes of value
     *  @p seed + i * @p seed_step. */
    void storeRange(VirtAddr base, std::uint32_t count,
                    std::uint32_t stride_bytes, std::uint32_t seed,
                    std::uint32_t seed_step);

    /** Issue @p count instruction fetches with stride @p stride_bytes. */
    void ifetchRange(VirtAddr base, std::uint32_t count,
                     std::uint32_t stride_bytes);

    /** Model @p n cycles of register-only computation. */
    void compute(Cycles n) { mach.clock().advance(n); }

    /** Total faults taken (for tests). */
    std::uint64_t faultCount() const { return faultsTaken; }

  private:
    Machine &mach;
    std::uint32_t cpuId;
    SpaceId currentSpace = 0;
    FaultHandler faultHandler;
    std::uint64_t faultsTaken = 0;

    // Pre-resolved pipeline handles: fixed for the machine's lifetime,
    // resolved once at construction so the fast path never chases
    // through Machine's accessors.
    Tlb &tlbRef;
    Cache &dcacheRef;
    Cache &icacheRef;
    const std::uint64_t pageOffsetMask; ///< pageBytes - 1
    const std::uint64_t pageBytesC;     ///< pageBytes

    std::uint32_t obsTick = 0; ///< sampling counter (period > 1 only)

    /** Core access path shared by load/store/ifetch. */
    std::uint32_t access(AccessType type, VirtAddr va,
                         std::uint32_t store_value);

    /** Stages index/tag-check/account for a translated, permitted
     *  access. */
    std::uint32_t accessMapped(AccessType type, VirtAddr va,
                               std::uint32_t store_value,
                               PageTableEntry *pte);

    /** Trap-and-retry loop for accesses the fast path rejected.
     *  @p pte is the (failed) translation of the first attempt. */
    std::uint32_t accessSlow(AccessType type, VirtAddr va,
                             std::uint32_t store_value,
                             PageTableEntry *pte);

    /** @return true iff this access should reach the observer. */
    bool
    observerDue()
    {
        const std::uint32_t period = mach.observerSamplePeriod();
        if (period <= 1)
            return true;
        return ++obsTick % period == 0;
    }

    /** Deliver a fault; @return true to retry. */
    bool deliver(const Fault &fault);
};

} // namespace vic

#endif // VIC_MACHINE_CPU_HH
