/**
 * @file
 * The composed simulated machine.
 *
 * Owns physical memory, the split instruction/data caches (one pair
 * per CPU), the TLB and page table, the DMA engine with an attached
 * disk, the cycle clock and the statistics registry. Everything above
 * this layer (pmap, OS, workloads) manipulates the machine only
 * through these components.
 *
 * With more than one CPU (and MESI coherence selected, the default)
 * the data caches attach to a CoherenceBus: fills snoop the peers,
 * stores to Shared lines broadcast an upgrade, and per-line MESI
 * states track ownership. Cache pages of the SAME colour on different
 * CPUs thereby behave as one hardware-consistent set — the paper's
 * Section 3.3 multiprocessor view — while unaligned aliases within
 * any one cache remain the operating system's problem, with unchanged
 * transition rules (unless synonymCoherence puts those in hardware
 * too, and ifetchCoherence does the same for the instruction caches).
 */

#ifndef VIC_MACHINE_MACHINE_HH
#define VIC_MACHINE_MACHINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/coherence.hh"
#include "common/cycle_clock.hh"
#include "common/event_log.hh"
#include "common/observer.hh"
#include "common/stats.hh"
#include "dma/disk.hh"
#include "dma/dma_engine.hh"
#include "machine/machine_params.hh"
#include "mem/physical_memory.hh"
#include "mmu/page_table.hh"
#include "tlb/tlb.hh"

namespace vic
{

class Machine
{
  public:
    explicit Machine(const MachineParams &machine_params);

    const MachineParams &params() const { return mparams; }
    std::uint32_t pageBytes() const { return mparams.pageBytes; }
    std::uint32_t numCpus() const { return mparams.numCpus; }

    StatSet &stats() { return statSet; }
    EventLog &events() { return eventLog; }
    CycleClock &clock() { return cycleClock; }
    PhysicalMemory &memory() { return *physMem; }
    PageTable &pageTable() { return *pgTable; }
    /** CPU @p cpu's TLB (each processor translates privately). */
    Tlb &tlb(std::uint32_t cpu = 0) { return *tlbs.at(cpu); }

    /** TLB shootdown: drop one page's entry on every CPU (the
     *  cross-processor interrupt a real pmap would send). */
    void tlbShootdownPage(SpaceVa key);

    /** TLB shootdown for a whole address space. */
    void tlbShootdownSpace(SpaceId space);
    DmaEngine &dma() { return *dmaEngine; }
    Disk &disk() { return *diskDev; }

    /** CPU @p cpu's data cache. */
    Cache &dcache(std::uint32_t cpu = 0) { return *dataCaches.at(cpu); }

    /** CPU @p cpu's instruction cache. */
    Cache &icache(std::uint32_t cpu = 0) { return *instCaches.at(cpu); }

    /** The cache a reference of kind @p kind on CPU @p cpu uses. */
    Cache &
    cacheFor(CacheKind kind, std::uint32_t cpu = 0)
    {
        return kind == CacheKind::Data ? dcache(cpu) : icache(cpu);
    }

    /** The snooping MESI bus connecting the caches, or nullptr on an
     *  uncoherent machine (uniprocessor without ifetchCoherence, or
     *  cpuCoherence == None). */
    CoherenceBus *coherenceBus() const { return cohBus.get(); }

    /** Install the transfer observer on CPU and DMA paths. */
    void setObserver(MemoryObserver *obs);

    MemoryObserver *observer() const { return memObserver; }

    /**
     * Report only every @p period-th CPU access to the observer
     * (default 1 = every access; 0 is clamped to 1). Sampling is for
     * profiling and tracing hooks only: the consistency oracle needs
     * every transfer to keep its shadow memory exact, so production
     * runs leave this at 1. DMA transfers are never sampled.
     */
    void
    setObserverSampling(std::uint32_t period)
    {
        obsSamplePeriod = period == 0 ? 1 : period;
    }

    std::uint32_t observerSamplePeriod() const { return obsSamplePeriod; }

    /**
     * Concurrency yield hook. The OS layers call yieldPoint() at the
     * places where, on the real machine, other processors or pending
     * DMA could run: around DMA transfers and between pageout steps.
     * With no hook installed (the default, and all production
     * configurations) a yield point is a single branch and drainDma()
     * completes pending transfers inline — behaviour and cycle totals
     * identical to the historic atomic DMA. Concurrency tests install
     * a hook to interleave work into these windows.
     */
    using YieldHook = std::function<void(const char *point)>;
    void setYieldHook(YieldHook hook) { yieldHook = std::move(hook); }

    /** Announce an OS-level interleaving opportunity named @p point. */
    void
    yieldPoint(const char *point)
    {
        if (yieldHook)
            yieldHook(point);
    }

    /** Drain all pending DMA, yielding at @p point before each beat. */
    void
    drainDma(const char *point)
    {
        while (dmaEngine->pendingTransfers() > 0) {
            yieldPoint(point);
            dmaEngine->stepBeat();
        }
    }

    /** Elapsed simulated seconds at the configured clock rate. */
    double elapsedSeconds() const
    { return double(cycleClock.now()) / mparams.clockHz; }

    /** Physical address of (frame, offset). */
    PhysAddr frameAddr(FrameId frame, std::uint64_t offset = 0) const
    { return PhysAddr(frame * mparams.pageBytes + offset); }

  private:
    MachineParams mparams;
    StatSet statSet;
    EventLog eventLog;
    CycleClock cycleClock;
    std::unique_ptr<PhysicalMemory> physMem;
    std::unique_ptr<PageTable> pgTable;
    std::vector<std::unique_ptr<Tlb>> tlbs;
    std::vector<std::unique_ptr<Cache>> dataCaches;
    std::vector<std::unique_ptr<Cache>> instCaches;
    std::unique_ptr<CoherenceBus> cohBus;
    std::unique_ptr<DmaEngine> dmaEngine;
    std::unique_ptr<Disk> diskDev;
    MemoryObserver *memObserver = nullptr;
    std::uint32_t obsSamplePeriod = 1;
    YieldHook yieldHook;
};

} // namespace vic

#endif // VIC_MACHINE_MACHINE_HH
