/**
 * @file
 * Quickstart: build a simulated HP-9000/720-like machine, attach the
 * consistency oracle, boot the Mach-like kernel with the paper's lazy
 * consistency policy, and run a task that exercises aliasing — then
 * print what the consistency machinery did.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/lazy_pmap.hh"
#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"

using namespace vic;

int
main()
{
    // 1. A machine with virtually indexed, physically tagged,
    //    write-back caches (the default scaled-down Model 720).
    MachineParams mp = MachineParams::hp720();
    Machine machine(mp);

    std::printf("machine: %u KB D-cache, %u cache pages (colours), "
                "%u B lines, %u B pages\n",
                unsigned(mp.dcacheBytes / 1024),
                machine.dcache().geometry().numColours(),
                machine.dcache().geometry().lineBytes(),
                machine.pageBytes());

    // 2. The oracle watches every transfer for stale data.
    ConsistencyOracle oracle(machine.memory().sizeBytes());
    machine.setObserver(&oracle);

    // 3. Boot the kernel with the paper's best policy (config F).
    Kernel kernel(machine, PolicyConfig::configF());

    // 4. A task maps one physical page at TWO virtual addresses with
    //    different cache colours — the alias problem of Section 2.2.
    TaskId task = kernel.createTask();
    auto object = std::make_shared<VmObject>(VmObject::anonymous(1));
    VirtAddr va1 =
        kernel.vmMapShared(task, object, Protection::readWrite());
    CachePageId c1 = kernel.pmap().dColourOf(va1);
    CachePageId c2 =
        (c1 + 1) % machine.dcache().geometry().numColours();
    VirtAddr va2 = kernel.vmMapShared(
        task, object, Protection::readWrite(),
        kernel.addressSpace(task).allocateVa(1, c2));

    std::printf("alias: va1=%#llx (colour %u), va2=%#llx (colour %u)\n",
                (unsigned long long)va1.value, c1,
                (unsigned long long)va2.value,
                kernel.pmap().dColourOf(va2));

    // 5. Write through one alias, read through the other. The write
    //    lands in va1's cache page; the read through va2 would fetch
    //    stale memory on unmanaged hardware. The consistency
    //    algorithm traps the read, flushes the dirty cache page, and
    //    the load returns the fresh value.
    kernel.userStore(task, va1, 0xdeadbeef);
    std::uint32_t got = kernel.userLoad(task, va2);
    std::printf("wrote 0xdeadbeef via va1, read %#x via va2 -> %s\n",
                got, got == 0xdeadbeef ? "consistent" : "STALE!");

    // 6. Ping-pong a few more times, then show the bookkeeping.
    for (std::uint32_t i = 0; i < 8; ++i) {
        kernel.userStore(task, i % 2 ? va2 : va1, i);
        std::uint32_t v = kernel.userLoad(task, i % 2 ? va1 : va2);
        if (v != i)
            std::printf("MISMATCH at round %u\n", i);
    }

    kernel.destroyTask(task);

    std::printf("\nconsistency machinery activity:\n");
    std::printf("  consistency faults : %llu\n",
                (unsigned long long)machine.stats().value(
                    "os.consistency_faults"));
    std::printf("  D-cache page flushes: %llu\n",
                (unsigned long long)machine.stats().value(
                    "pmap.d_page_flushes"));
    std::printf("  D-cache page purges : %llu\n",
                (unsigned long long)machine.stats().value(
                    "pmap.d_page_purges"));
    std::printf("  elapsed simulated time: %.6f s (%llu cycles)\n",
                machine.elapsedSeconds(),
                (unsigned long long)machine.clock().now());

    std::printf("\noracle: %llu transfers checked, %llu violations%s\n",
                (unsigned long long)oracle.checkedCount(),
                (unsigned long long)oracle.violationCount(),
                oracle.clean() ? " -- memory system is consistent"
                               : " -- BROKEN");
    return oracle.clean() ? 0 : 1;
}
