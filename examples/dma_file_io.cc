/**
 * @file
 * Example: file I/O, the buffer cache, and DMA consistency.
 *
 * Walks a file through its whole life — written by a task through the
 * Unix server, pushed to disk by write-behind DMA, evicted, read back
 * by DMA, and finally executed as program text — printing the cache
 * consistency work each stage performs:
 *
 *  - DMA-read  (disk write): dirty cache data must be flushed first
 *    so the device reads current bytes;
 *  - DMA-write (disk read): cached copies must be purged so they do
 *    not shadow or clobber the device's data;
 *  - exec: the buffer-to-text copy leaves the page dirty in the DATA
 *    cache, and the first instruction fetch forces the flush (the
 *    paper's data-space to instruction-space path).
 *
 * Build & run:  ./build/examples/dma_file_io
 */

#include <cstdio>

#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"

using namespace vic;

namespace
{

void
show(Machine &m, const char *stage)
{
    std::printf("%-34s dmaRd-flush=%-3llu dmaWr-purge=%-3llu "
                "D->I-flush=%-3llu disk(r=%llu w=%llu)\n",
                stage,
                (unsigned long long)m.stats().value(
                    "pmap.d_flush.dma_read"),
                (unsigned long long)m.stats().value(
                    "pmap.d_purge.dma_write"),
                (unsigned long long)m.stats().value(
                    "pmap.d_flush.ifetch"),
                (unsigned long long)m.stats().value("disk.block_reads"),
                (unsigned long long)m.stats().value(
                    "disk.block_writes"));
}

} // anonymous namespace

int
main()
{
    Machine machine{MachineParams::hp720()};
    ConsistencyOracle oracle(machine.memory().sizeBytes());
    machine.setObserver(&oracle);

    OsParams os_params;
    os_params.bufferCacheSlots = 8;  // small cache: visible eviction
    os_params.writeBehindThreshold = 2;
    Kernel kernel(machine, PolicyConfig::configF(), os_params);

    TaskId task = kernel.createTask();
    show(machine, "boot:");

    // Write a 4-page "program" file: the data goes task -> shared
    // page -> buffer cache (all CPU copies through the data cache).
    FileId prog = kernel.fileCreate(task, "prog");
    for (std::uint32_t p = 0; p < 4; ++p) {
        kernel.fileWrite(task, prog, std::uint64_t(p) * 4096, 4096,
                         0x40000000u + p);
    }
    show(machine, "after 4-page write:");

    // Force everything to disk: each dirty buffer is flushed from the
    // cache (DMA-read consistency) and DMA'd out.
    kernel.fileSyncAll();
    show(machine, "after sync:");

    // Evict the buffers by streaming another file through the tiny
    // cache, then read 'prog' back: the disk DMA-writes into reused
    // buffer pages, whose stale cached copies must not shadow it.
    FileId noise = kernel.fileCreate(task, "noise");
    for (std::uint32_t p = 0; p < 10; ++p) {
        kernel.fileWrite(task, noise, std::uint64_t(p) * 4096, 4096,
                         0x7e000000u + p);
    }
    kernel.fileRead(task, prog, 0, 4 * 4096);
    show(machine, "after evict + re-read:");

    // Execute the file as program text: pages are copied from the
    // buffer cache into the task and fetched through the I-cache.
    kernel.mapText(task, prog, 4);
    kernel.execText(task, 0, 4);
    show(machine, "after exec:");

    // The instructions fetched must be exactly the file's bytes.
    std::uint32_t first_insn =
        kernel.userExec(task, VirtAddr(os_params.taskTextBase));
    std::printf("\nfirst instruction word: %#x (file was written with "
                "%#x)\n", first_insn, 0x40000000u);

    kernel.destroyTask(task);
    std::printf("\noracle: %llu transfers checked, %llu violations%s\n",
                (unsigned long long)oracle.checkedCount(),
                (unsigned long long)oracle.violationCount(),
                oracle.clean() ? " -- every DMA and ifetch was "
                                 "consistent" : "");
    return oracle.clean() ? 0 : 1;
}
