/**
 * @file
 * Example: a just-in-time compiler on split, non-coherent I/D caches.
 *
 * A JIT generates machine code with ordinary stores (data cache), then
 * jumps to it (instruction cache). On the paper's hardware the two
 * caches are not kept coherent — so without consistency management the
 * processor would execute whatever stale bytes the instruction cache
 * or memory happened to hold. The consistency machinery inserts the
 * required data-cache flush (and, after regeneration, the instruction-
 * cache purge) at exactly the first fetch, and never anywhere else.
 *
 * This is the paper's "data space to instruction space" path in its
 * most direct form — the same one the Unix server's text faults take.
 *
 * Build & run:  ./build/examples/self_modifying_jit
 */

#include <cstdio>

#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"

using namespace vic;

int
main()
{
    Machine machine{MachineParams::hp720()};
    ConsistencyOracle oracle(machine.memory().sizeBytes());
    machine.setObserver(&oracle);
    Kernel kernel(machine, PolicyConfig::configF());

    TaskId jit = kernel.createTask();

    // The code buffer: writable AND executable (maxProt rwx).
    auto code_obj = std::make_shared<VmObject>(VmObject::anonymous(1));
    VirtAddr code = kernel.vmMapShared(jit, code_obj, Protection::all());
    std::printf("code buffer at %#llx\n",
                (unsigned long long)code.value);

    auto flushes = [&] {
        return machine.stats().value("pmap.d_flush.ifetch");
    };
    auto ipurges = [&] {
        return machine.stats().value("pmap.i_page_purges");
    };

    // --- Generation 1: emit code, then run it. ------------------------
    for (std::uint32_t i = 0; i < 16; ++i)
        kernel.userStore(jit, code.plus(4 * i), 0x10000000u + i);

    std::uint32_t insn = kernel.userExec(jit, code);
    std::printf("gen 1: first insn %#x (emitted %#x) -- D->I flushes "
                "so far: %llu\n",
                insn, 0x10000000u, (unsigned long long)flushes());

    // Running it again costs nothing: the state machine knows the
    // instruction cache is current.
    auto before = flushes();
    for (int rep = 0; rep < 100; ++rep)
        kernel.userExec(jit, code.plus(4 * (rep % 16)));
    std::printf("gen 1: 100 more fetches cost %llu additional "
                "flushes\n",
                (unsigned long long)(flushes() - before));

    // --- Generation 2: rewrite the code in place. ---------------------
    // The store is trapped (the page has live instruction-cache
    // presence), the I-cache copy is marked stale, and the next fetch
    // purges it and sees the new instructions.
    for (std::uint32_t i = 0; i < 16; ++i)
        kernel.userStore(jit, code.plus(4 * i), 0x20000000u + i);

    insn = kernel.userExec(jit, code);
    std::printf("gen 2: first insn %#x (emitted %#x) -- I-cache "
                "purges: %llu, D->I flushes: %llu\n",
                insn, 0x20000000u, (unsigned long long)ipurges(),
                (unsigned long long)flushes());

    if (insn != 0x20000000u) {
        std::printf("EXECUTED STALE CODE!\n");
        return 1;
    }

    kernel.destroyTask(jit);
    std::printf("\noracle: %llu transfers checked, %llu violations%s\n",
                (unsigned long long)oracle.checkedCount(),
                (unsigned long long)oracle.violationCount(),
                oracle.clean() ? " -- every fetched instruction was "
                                 "the newest emitted code" : "");
    return oracle.clean() ? 0 : 1;
}
