/**
 * @file
 * Example: statically verify a consistency policy and replay a
 * counterexample.
 *
 * Shows the three-step workflow of the vic::verify API:
 *
 *   1. PolicyVerifier::verify() — exhaustively explore the abstract
 *      protocol state machine for a PolicyConfig and check the paper's
 *      invariants (no stale read, no lost dirty write-back, no
 *      shadowed DMA);
 *   2. inspect the minimal counterexample trace if one exists;
 *   3. TraceReplayer::replay() — run that trace on a fresh concrete
 *      Machine under the ConsistencyOracle to prove the bug is real.
 *
 * The broken policy fails in two events; CMU's lazy policy verifies
 * sound over its whole reachable state space.
 */

#include <cstdio>

#include "core/policy_config.hh"
#include "verify/policy_verifier.hh"
#include "verify/trace_replay.hh"

int
main()
{
    using vic::PolicyConfig;
    namespace verify = vic::verify;

    const verify::PolicyVerifier verifier;

    // A sound policy: the verifier proves every reachable state clean.
    for (const PolicyConfig &p : PolicyConfig::table5Systems()) {
        if (p.name != "CMU")
            continue;
        const verify::VerifyResult r = verifier.verify(p);
        std::printf("%s: %s — %llu reachable states, %llu transitions, "
                    "diameter %u\n",
                    r.policyName.c_str(),
                    r.sound ? "sound" : "unsound",
                    static_cast<unsigned long long>(r.numStates),
                    static_cast<unsigned long long>(r.numTransitions),
                    r.diameter);
    }

    // The deliberately broken policy: get the shortest failing trace.
    const verify::VerifyResult bad =
        verifier.verify(PolicyConfig::broken());
    if (bad.sound) {
        std::printf("unexpected: broken policy verified sound\n");
        return 1;
    }
    std::printf("\n%s: unsound\n  minimal counterexample: %s\n"
                "  violation: %s (%s)\n",
                bad.policyName.c_str(),
                verify::traceName(bad.counterexample).c_str(),
                verify::violationKindName(bad.violation->kind),
                bad.violation->detail.c_str());

    // Replay it on the concrete machine to confirm it is a real bug.
    const verify::TraceReplayer replayer(PolicyConfig::broken());
    const verify::ReplayResult rr = replayer.replay(bad.counterexample);
    std::printf("  concrete replay: %s (first oracle violation at "
                "event %d, %s)\n",
                rr.violated ? "reproduced" : "did NOT reproduce",
                rr.firstViolationEvent, rr.kind.c_str());
    return rr.violated ? 0 : 1;
}
