/**
 * @file
 * Example: explore consistency policies and machine geometries from
 * the command line.
 *
 *   policy_explorer [policy] [workload] [--colours N] [--pipt]
 *                   [--write-through] [--snoop] [--ways N]
 *                   [--cpus N] [--stats] [--trace N]
 *
 *   policy:   A B C D E F cmu utah tut apollo sun broken  (default F)
 *   workload: afs latex build alias-aligned alias-unaligned
 *             (default afs)
 *
 * Prints the run's elapsed time, fault and cache-operation counts and
 * the oracle verdict. Handy for eyeballing how one knob changes the
 * numbers, e.g.:
 *
 *   ./build/examples/policy_explorer A build
 *   ./build/examples/policy_explorer F build --pipt
 *   ./build/examples/policy_explorer broken alias-unaligned
 */

#include <cstdio>
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "os/os_params.hh"
#include "workload/afs_bench.hh"
#include "workload/contrived_alias.hh"
#include "workload/kernel_build.hh"
#include "workload/latex_bench.hh"
#include "workload/runner.hh"

using namespace vic;

namespace
{

PolicyConfig
parsePolicy(const std::string &name)
{
    if (name == "A") return PolicyConfig::configA();
    if (name == "B") return PolicyConfig::configB();
    if (name == "C") return PolicyConfig::configC();
    if (name == "D") return PolicyConfig::configD();
    if (name == "E") return PolicyConfig::configE();
    if (name == "F") return PolicyConfig::configF();
    if (name == "cmu") return PolicyConfig::cmu();
    if (name == "utah") return PolicyConfig::utah();
    if (name == "tut") return PolicyConfig::tut();
    if (name == "apollo") return PolicyConfig::apollo();
    if (name == "sun") return PolicyConfig::sun();
    if (name == "broken") return PolicyConfig::broken();
    std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
    std::exit(2);
}

std::unique_ptr<Workload>
parseWorkload(const std::string &name)
{
    if (name == "afs") return std::make_unique<AfsBench>();
    if (name == "latex") return std::make_unique<LatexBench>();
    if (name == "build") return std::make_unique<KernelBuild>();
    if (name == "alias-aligned") {
        return std::make_unique<ContrivedAlias>(
            ContrivedAlias::Params{true, 20000, true});
    }
    if (name == "alias-unaligned") {
        return std::make_unique<ContrivedAlias>(
            ContrivedAlias::Params{false, 20000, true});
    }
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    std::exit(2);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string policy_name = argc > 1 ? argv[1] : "F";
    std::string workload_name = argc > 2 ? argv[2] : "afs";

    PolicyConfig policy = parsePolicy(policy_name);
    MachineParams mp = MachineParams::hp720();
    bool dump_stats = false;
    std::size_t trace_events = 0;

    for (int i = 3; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--pipt")) {
            mp.dcacheIndexing = Indexing::Physical;
            mp.icacheIndexing = Indexing::Physical;
        } else if (!std::strcmp(argv[i], "--write-through")) {
            mp.dcachePolicy = WritePolicy::WriteThrough;
        } else if (!std::strcmp(argv[i], "--snoop")) {
            mp.dmaSnoops = true;
        } else if (!std::strcmp(argv[i], "--ways") && i + 1 < argc) {
            mp.dcacheWays = std::uint32_t(std::atoi(argv[++i]));
            mp.icacheWays = mp.dcacheWays;
        } else if (!std::strcmp(argv[i], "--colours") &&
                   i + 1 < argc) {
            // Colours = cache size / page size for direct mapping.
            mp.dcacheBytes = std::uint64_t(std::atoi(argv[++i])) *
                             mp.pageBytes;
            mp.icacheBytes = mp.dcacheBytes;
        } else if (!std::strcmp(argv[i], "--cpus") && i + 1 < argc) {
            mp.numCpus = std::uint32_t(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--stats")) {
            dump_stats = true;
        } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
            trace_events = std::size_t(std::atoi(argv[++i]));
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            return 2;
        }
    }

    auto workload = parseWorkload(workload_name);
    RunResult r = runWorkload(*workload, policy, mp, OsParams{},
                              trace_events);

    std::printf("workload : %s\n", r.workload.c_str());
    std::printf("policy   : %s\n", r.policy.c_str());
    std::printf("geometry : %llu KB %s %u-way, %u colour(s), %s, "
                "DMA %s\n",
                (unsigned long long)(mp.dcacheBytes / 1024),
                mp.dcacheIndexing == Indexing::Virtual ? "VIPT"
                                                       : "PIPT",
                mp.dcacheWays, mp.dcacheGeometry().numColours(),
                mp.dcachePolicy == WritePolicy::WriteBack
                    ? "write-back" : "write-through",
                mp.dmaSnoops ? "snooping" : "not snooping");
    if (mp.numCpus > 1)
        std::printf("cpus     : %u (hardware-coherent data caches)\n",
                    mp.numCpus);
    std::printf("\n");
    std::printf("elapsed            : %.4f s (%llu cycles @ 50 MHz)\n",
                r.seconds, (unsigned long long)r.cycles);
    std::printf("mapping faults     : %llu\n",
                (unsigned long long)r.mappingFaults());
    std::printf("consistency faults : %llu\n",
                (unsigned long long)r.consistencyFaults());
    std::printf("cow faults         : %llu\n",
                (unsigned long long)r.stat("os.cow_faults"));
    std::printf("D page flushes     : %llu (dma %llu, d->i %llu)\n",
                (unsigned long long)r.dPageFlushes(),
                (unsigned long long)r.dmaReadFlushes(),
                (unsigned long long)r.stat("pmap.d_flush.ifetch"));
    std::printf("D page purges      : %llu (dma %llu)\n",
                (unsigned long long)r.dPagePurges(),
                (unsigned long long)r.dmaWritePurges());
    std::printf("I page purges      : %llu\n",
                (unsigned long long)r.iPagePurges());
    std::printf("cache hit rate     : %.2f%%\n",
                100.0 * double(r.stat("dcache.hits")) /
                    double(r.stat("dcache.hits") +
                           r.stat("dcache.misses")));
    if (dump_stats) {
        std::printf("\nall non-zero counters:\n");
        std::vector<std::pair<std::string, std::uint64_t>> sorted(
            r.stats.begin(), r.stats.end());
        std::sort(sorted.begin(), sorted.end());
        for (const auto &[k, v] : sorted) {
            if (v)
                std::printf("  %-36s %llu\n", k.c_str(),
                            (unsigned long long)v);
        }
    }

    if (!r.traceTail.empty()) {
        std::printf("\nlast %zu consistency events:\n",
                    r.traceTail.size());
        for (const auto &e : r.traceTail)
            std::printf("  %s\n", e.c_str());
    }

    std::printf("\noracle: %llu checked, %llu violations%s\n",
                (unsigned long long)r.oracleChecked,
                (unsigned long long)r.oracleViolations,
                r.oracleViolations
                    ? "  <-- THE MEMORY SYSTEM RETURNED STALE DATA"
                    : " (consistent)");
    return 0;
}
