/**
 * @file
 * Example: sharing memory and passing pages between tasks.
 *
 * Demonstrates the three sharing mechanisms whose consistency the
 * paper's algorithm manages, and how kernel address selection makes
 * them cheap:
 *
 *  1. shared memory mapped at kernel-chosen (aligning) addresses —
 *     no consistency operations at all;
 *  2. shared memory forced to non-aligning addresses — every
 *     ownership change costs a fault plus flush/purge;
 *  3. IPC page transfer — with an aligned destination the moved page
 *     is still warm in the cache when the receiver touches it;
 *  4. copy-on-write — private copies prepared through aligned kernel
 *     windows.
 *
 * Build & run:  ./build/examples/shared_memory_ipc
 */

#include <cstdio>

#include "machine/machine.hh"
#include "oracle/consistency_oracle.hh"
#include "os/kernel.hh"

using namespace vic;

namespace
{

struct OpCounts
{
    std::uint64_t faults, flushes, purges;
};

OpCounts
snapshot(Machine &m)
{
    return {m.stats().value("os.consistency_faults"),
            m.stats().value("pmap.d_page_flushes"),
            m.stats().value("pmap.d_page_purges")};
}

void
report(const char *what, Machine &m, const OpCounts &before)
{
    OpCounts now = snapshot(m);
    std::printf("%-42s faults=%-5llu flushes=%-5llu purges=%llu\n",
                what,
                (unsigned long long)(now.faults - before.faults),
                (unsigned long long)(now.flushes - before.flushes),
                (unsigned long long)(now.purges - before.purges));
}

} // anonymous namespace

int
main()
{
    Machine machine{MachineParams::hp720()};
    ConsistencyOracle oracle(machine.memory().sizeBytes());
    machine.setObserver(&oracle);
    Kernel kernel(machine, PolicyConfig::configF());

    TaskId producer = kernel.createTask();
    TaskId consumer = kernel.createTask();
    const std::uint32_t colours =
        machine.dcache().geometry().numColours();

    // --- 1. Shared memory, kernel-chosen addresses -------------------
    {
        auto obj = std::make_shared<VmObject>(VmObject::anonymous(1));
        VirtAddr p_va = kernel.vmMapShared(producer, obj,
                                           Protection::readWrite());
        // Let the consumer's address align with the producer's.
        VirtAddr aligned = kernel.addressSpace(consumer).allocateVa(
            1, kernel.pmap().dColourOf(p_va));
        VirtAddr c_va = kernel.vmMapShared(
            consumer, obj, Protection::readWrite(), aligned);

        OpCounts before = snapshot(machine);
        for (std::uint32_t i = 0; i < 64; ++i) {
            kernel.userStore(producer, p_va.plus(4 * i), i);
            if (kernel.userLoad(consumer, c_va.plus(4 * i)) != i)
                std::printf("  MISMATCH!\n");
        }
        report("aligned shared memory, 64 hand-offs:", machine, before);
    }

    // --- 2. Shared memory at clashing addresses ----------------------
    {
        auto obj = std::make_shared<VmObject>(VmObject::anonymous(1));
        VirtAddr p_va = kernel.vmMapShared(producer, obj,
                                           Protection::readWrite());
        CachePageId clash =
            (kernel.pmap().dColourOf(p_va) + colours / 2) % colours;
        VirtAddr c_va = kernel.vmMapShared(
            consumer, obj, Protection::readWrite(),
            kernel.addressSpace(consumer).allocateVa(1, clash));

        OpCounts before = snapshot(machine);
        for (std::uint32_t i = 0; i < 64; ++i) {
            kernel.userStore(producer, p_va.plus(4 * i), i);
            if (kernel.userLoad(consumer, c_va.plus(4 * i)) != i)
                std::printf("  MISMATCH!\n");
        }
        report("UNALIGNED shared memory, 64 hand-offs:", machine,
               before);
    }

    // --- 3. IPC page transfer ----------------------------------------
    {
        OpCounts before = snapshot(machine);
        for (int round = 0; round < 8; ++round) {
            VirtAddr src = kernel.vmAllocate(producer, 1);
            kernel.userTouchPage(producer, src, true, 0x1000u * round);
            VirtAddr dst =
                kernel.ipcTransferPage(producer, src, consumer);
            kernel.userTouchPage(consumer, dst, false);
            kernel.vmDeallocate(consumer, dst);
        }
        report("IPC page transfer x8 (aligned dest):", machine, before);
    }

    // --- 4. Copy-on-write ---------------------------------------------
    {
        VirtAddr proto = kernel.vmAllocate(producer, 1);
        kernel.userTouchPage(producer, proto, true, 0xbeef);
        auto obj = kernel.regionObject(producer, proto);

        OpCounts before = snapshot(machine);
        VirtAddr cow = kernel.vmMapCow(consumer, obj);
        kernel.userLoad(consumer, cow);        // shares the frame
        kernel.userStore(consumer, cow, 123);  // gets a private copy
        report("copy-on-write share + private write:", machine, before);

        std::printf("  producer still sees %#x, consumer sees %u\n",
                    kernel.userLoad(producer, proto),
                    kernel.userLoad(consumer, cow));
    }

    std::printf("\noracle: %llu transfers checked, %llu violations%s\n",
                (unsigned long long)oracle.checkedCount(),
                (unsigned long long)oracle.violationCount(),
                oracle.clean() ? " -- all sharing was consistent" : "");
    return oracle.clean() ? 0 : 1;
}
